//! Level-1 (Shichman-Hodges) MOSFET model with body effect,
//! channel-length modulation and Meyer gate capacitances.
//!
//! The paper's circuit uses a UMC 0.18 µm mixed-mode process with both
//! normal- and low-threshold ("LV") devices; [`MosParams::nmos_018`] et al.
//! provide parameter decks of that class.

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosType {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Level-1 model parameters (SI units).
#[derive(Debug, Clone, PartialEq)]
pub struct MosParams {
    /// Polarity.
    pub ty: MosType,
    /// Zero-bias threshold voltage (positive for NMOS, negative for PMOS), V.
    pub vt0: f64,
    /// Transconductance parameter KP = µ0·Cox, A/V².
    pub kp: f64,
    /// Body-effect coefficient γ, √V.
    pub gamma: f64,
    /// Surface potential 2φF, V.
    pub phi: f64,
    /// Channel-length modulation λ at the 1 µm reference length, 1/V.
    /// The effective value scales as `λ · (1 µm / L)`, capturing the
    /// shorter-channel output-conductance degradation that level 2/3
    /// models include and that the paper's gain/pole trade-off rests on.
    pub lambda: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Gate-source/drain overlap capacitance per width, F/m.
    pub cgso: f64,
    /// Gate-bulk overlap capacitance per length, F/m.
    pub cgbo: f64,
    /// Zero-bias junction capacitance per area (source/drain), F/m².
    pub cj: f64,
}

impl MosParams {
    /// Standard-Vt NMOS of the 0.18 µm 1.8 V class.
    pub fn nmos_018() -> Self {
        MosParams {
            ty: MosType::Nmos,
            vt0: 0.45,
            kp: 300e-6,
            gamma: 0.45,
            phi: 0.85,
            lambda: 0.10,
            cox: 8.4e-3, // tox ≈ 4.1 nm
            cgso: 3.5e-10,
            cgbo: 4.0e-10,
            cj: 1.0e-3,
        }
    }

    /// Standard-Vt PMOS of the 0.18 µm 1.8 V class.
    pub fn pmos_018() -> Self {
        MosParams {
            ty: MosType::Pmos,
            vt0: -0.45,
            kp: 80e-6,
            gamma: 0.40,
            phi: 0.85,
            lambda: 0.12,
            cox: 8.4e-3,
            cgso: 3.5e-10,
            cgbo: 4.0e-10,
            cj: 1.1e-3,
        }
    }

    /// Low-Vt NMOS (the paper's "LV" devices: larger overdrive, used in the
    /// transconductor core).
    pub fn nmos_lv_018() -> Self {
        MosParams {
            vt0: 0.25,
            ..Self::nmos_018()
        }
    }

    /// Low-Vt PMOS.
    pub fn pmos_lv_018() -> Self {
        MosParams {
            vt0: -0.25,
            ..Self::pmos_018()
        }
    }

    /// Threshold voltage including body effect, for the *canonical*
    /// (NMOS-convention) bias `vbs ≤ 0`.
    pub fn vth(&self, vbs: f64) -> f64 {
        let phi = self.phi.max(0.1);
        let arg = (phi - vbs).max(1e-3);
        let vt0_mag = self.vt0.abs();
        vt0_mag + self.gamma * (arg.sqrt() - phi.sqrt())
    }
}

/// Small-signal and large-signal evaluation of one device at a bias point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosEval {
    /// Drain current (positive into the drain for NMOS convention), A.
    pub ids: f64,
    /// ∂Ids/∂Vgs, S.
    pub gm: f64,
    /// ∂Ids/∂Vds, S.
    pub gds: f64,
    /// ∂Ids/∂Vbs, S.
    pub gmbs: f64,
    /// Gate-source capacitance (Meyer + overlap), F.
    pub cgs: f64,
    /// Gate-drain capacitance, F.
    pub cgd: f64,
    /// Gate-bulk capacitance, F.
    pub cgb: f64,
    /// Operating region for diagnostics.
    pub region: MosRegion,
}

/// Operating region of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MosRegion {
    /// `vgs` below threshold.
    #[default]
    Cutoff,
    /// Linear / triode.
    Triode,
    /// Saturation.
    Saturation,
}

/// Evaluates the level-1 equations in *canonical* NMOS convention:
/// the caller is responsible for polarity mapping and source/drain
/// swapping (see [`eval_mosfet`]).
fn eval_canonical(p: &MosParams, w: f64, l: f64, vgs: f64, vds: f64, vbs: f64) -> MosEval {
    debug_assert!(vds >= 0.0);
    let vth = p.vth(vbs.min(0.0));
    let beta = p.kp * w / l;
    let p = &MosParams {
        lambda: p.lambda * (1e-6 / l),
        ..p.clone()
    };
    let vgst = vgs - vth;

    // d(vth)/d(vbs): body transconductance factor.
    let phi = p.phi.max(0.1);
    let arg = (phi - vbs.min(0.0)).max(1e-3);
    let dvth_dvbs = if vbs < 0.0 {
        -p.gamma / (2.0 * arg.sqrt())
    } else {
        0.0
    };

    let (ids, gm, gds, region) = if vgst <= 0.0 {
        (0.0, 0.0, 0.0, MosRegion::Cutoff)
    } else if vds < vgst {
        // Triode.
        let ids = beta * (vgst * vds - 0.5 * vds * vds) * (1.0 + p.lambda * vds);
        let gm = beta * vds * (1.0 + p.lambda * vds);
        let gds = beta
            * ((vgst - vds) * (1.0 + p.lambda * vds) + (vgst * vds - 0.5 * vds * vds) * p.lambda);
        (ids, gm, gds, MosRegion::Triode)
    } else {
        // Saturation.
        let ids = 0.5 * beta * vgst * vgst * (1.0 + p.lambda * vds);
        let gm = beta * vgst * (1.0 + p.lambda * vds);
        let gds = 0.5 * beta * vgst * vgst * p.lambda;
        (ids, gm, gds, MosRegion::Saturation)
    };
    let gmbs = -gm * dvth_dvbs; // ∂Ids/∂Vbs = gm · (−∂Vth/∂Vbs)

    // Meyer gate capacitances.
    let cox_total = p.cox * w * l;
    let cov = p.cgso * w;
    let (cgs, cgd, cgb) = match region {
        MosRegion::Cutoff => (cov, cov, cox_total + p.cgbo * l),
        MosRegion::Triode => (0.5 * cox_total + cov, 0.5 * cox_total + cov, p.cgbo * l),
        MosRegion::Saturation => ((2.0 / 3.0) * cox_total + cov, cov, p.cgbo * l),
    };

    MosEval {
        ids,
        gm,
        gds,
        gmbs,
        cgs,
        cgd,
        cgb,
        region,
    }
}

/// Full device evaluation at terminal voltages `(vg, vd, vs, vb)` relative
/// to ground, handling polarity and source/drain swap.
///
/// Returned quantities follow the *device* convention: `ids` flows from
/// drain to source for NMOS (reversed sign for PMOS handled internally so
/// the MNA stamp can treat `ids` as the current leaving the drain node).
///
/// The second return slot reports whether drain/source were swapped
/// internally (needed to assign Meyer caps to the right physical terminals).
pub fn eval_mosfet(
    p: &MosParams,
    w: f64,
    l: f64,
    vg: f64,
    vd: f64,
    vs: f64,
    vb: f64,
) -> (MosEval, bool) {
    // Map PMOS onto the canonical NMOS equations by mirroring all voltages.
    let sgn = match p.ty {
        MosType::Nmos => 1.0,
        MosType::Pmos => -1.0,
    };
    let (vg, vd, vs, vb) = (sgn * vg, sgn * vd, sgn * vs, sgn * vb);
    // Canonical form requires vds >= 0; swap terminals if needed.
    let swapped = vd < vs;
    let (d, s) = if swapped { (vs, vd) } else { (vd, vs) };
    let vgs = vg - s;
    let vds = d - s;
    let vbs = vb - s;
    let mut ev = eval_canonical(p, w, l, vgs, vds, vbs);
    // Current direction: canonical ids flows d→s; if swapped, the physical
    // drain is the canonical source.
    if swapped {
        ev.ids = -ev.ids;
        std::mem::swap(&mut ev.cgs, &mut ev.cgd);
    }
    // For PMOS the mirrored current reverses once more in physical terms,
    // but because we also mirrored the voltages, `ids` as computed already
    // represents current magnitude in the canonical frame; the stamp uses
    // sign() to restore polarity.
    ev.ids *= sgn;
    (ev, swapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_with_body_effect_increases() {
        let p = MosParams::nmos_018();
        let v0 = p.vth(0.0);
        let v1 = p.vth(-1.0);
        assert!((v0 - 0.45).abs() < 1e-12);
        assert!(v1 > v0, "reverse body bias raises vth");
    }

    #[test]
    fn cutoff_region_has_no_current() {
        let p = MosParams::nmos_018();
        let (ev, _) = eval_mosfet(&p, 10e-6, 1e-6, 0.2, 1.0, 0.0, 0.0);
        assert_eq!(ev.region, MosRegion::Cutoff);
        assert_eq!(ev.ids, 0.0);
        assert_eq!(ev.gm, 0.0);
    }

    #[test]
    fn saturation_current_matches_hand_calculation() {
        let p = MosParams::nmos_018();
        let (w, l) = (10e-6, 1e-6);
        let (vgs, vds) = (1.0, 1.5);
        let (ev, swapped) = eval_mosfet(&p, w, l, vgs, vds, 0.0, 0.0);
        assert!(!swapped);
        assert_eq!(ev.region, MosRegion::Saturation);
        let beta = p.kp * w / l;
        let vgst: f64 = vgs - 0.45;
        let expect = 0.5 * beta * vgst * vgst * (1.0 + p.lambda * vds);
        assert!((ev.ids - expect).abs() / expect < 1e-12);
        assert!((ev.gm - beta * vgst * (1.0 + p.lambda * vds)).abs() < 1e-12);
    }

    #[test]
    fn triode_region_and_continuity_at_vdsat() {
        let p = MosParams::nmos_018();
        let (w, l) = (10e-6, 1e-6);
        let vgst = 0.55; // vgs = 1.0
        let below = eval_mosfet(&p, w, l, 1.0, vgst - 1e-9, 0.0, 0.0).0;
        let above = eval_mosfet(&p, w, l, 1.0, vgst + 1e-9, 0.0, 0.0).0;
        assert_eq!(below.region, MosRegion::Triode);
        assert_eq!(above.region, MosRegion::Saturation);
        assert!(
            (below.ids - above.ids).abs() < 1e-9,
            "Ids continuous at vdsat"
        );
    }

    #[test]
    fn source_drain_swap_reverses_current() {
        let p = MosParams::nmos_018();
        // Symmetric device: bias reversed → current reversed.
        let (fwd, sw_f) = eval_mosfet(&p, 10e-6, 1e-6, 1.2, 0.6, 0.0, 0.0);
        let (rev, sw_r) = eval_mosfet(&p, 10e-6, 1e-6, 1.2 + 0.6, 0.0 + 0.6, 0.6 + 0.6, 0.6);
        assert!(!sw_f);
        assert!(sw_r);
        // Same |vgs| w.r.t. the conducting source, opposite direction.
        assert!(rev.ids < 0.0);
        assert!((fwd.ids + rev.ids).abs() / fwd.ids < 1e-9);
    }

    #[test]
    fn pmos_conducts_with_negative_vgs() {
        let p = MosParams::pmos_018();
        // Source at 1.8 V, gate at 0.8 V → |vgs| = 1.0 > |vt0|.
        let (ev, _) = eval_mosfet(&p, 10e-6, 1e-6, 0.8, 0.2, 1.8, 1.8);
        assert_eq!(ev.region, MosRegion::Saturation);
        // PMOS: current flows source→drain; in stamp convention ids < 0.
        assert!(ev.ids < 0.0);
        assert!(ev.gm > 0.0);
    }

    #[test]
    fn lv_devices_have_lower_threshold() {
        let n = MosParams::nmos_018();
        let nlv = MosParams::nmos_lv_018();
        assert!(nlv.vt0 < n.vt0);
        let (hi, _) = eval_mosfet(&nlv, 10e-6, 1e-6, 0.4, 1.0, 0.0, 0.0);
        let (lo, _) = eval_mosfet(&n, 10e-6, 1e-6, 0.4, 1.0, 0.0, 0.0);
        assert!(hi.ids > 0.0);
        assert_eq!(lo.ids, 0.0, "standard-Vt still off at vgs=0.4");
    }

    #[test]
    fn meyer_caps_partition_by_region() {
        let p = MosParams::nmos_018();
        let (w, l) = (10e-6, 1e-6);
        let cox_total = p.cox * w * l;
        let sat = eval_mosfet(&p, w, l, 1.0, 1.5, 0.0, 0.0).0;
        assert!((sat.cgs - (2.0 / 3.0) * cox_total - p.cgso * w).abs() < 1e-18);
        assert!((sat.cgd - p.cgso * w).abs() < 1e-18);
        let off = eval_mosfet(&p, w, l, 0.0, 1.5, 0.0, 0.0).0;
        assert!(off.cgb > sat.cgb, "gate-bulk cap dominates in cutoff");
    }

    #[test]
    fn gmbs_is_zero_without_body_bias_and_positive_with() {
        let p = MosParams::nmos_018();
        let at0 = eval_mosfet(&p, 10e-6, 1e-6, 1.0, 1.5, 0.0, 0.0).0;
        assert_eq!(at0.gmbs, 0.0);
        let biased = eval_mosfet(&p, 10e-6, 1e-6, 1.0, 1.5, 0.0, -0.5).0;
        assert!(biased.gmbs > 0.0);
    }
}
