//! DC operating point: damped Newton-Raphson with gmin and source stepping.

use crate::circuit::{Circuit, NodeId};
use crate::error::SpiceError;
use crate::linalg::{LuFactors, Matrix};
use crate::mna::{assemble, estimate_nnz, AssembleMode, AssembleParams, MnaLayout};
use crate::perf::PerfCounters;
use sim_core::sparse::{NumericLu, RefactorOutcome, SolverKind, SparseMatrix, SymbolicLu};

/// Newton iteration controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations per stage.
    pub max_iter: usize,
    /// Absolute voltage tolerance, V.
    pub vntol: f64,
    /// Relative tolerance.
    pub reltol: f64,
    /// Per-iteration clamp on node-voltage updates, V (damping).
    pub max_step: f64,
    /// Reuse the cached LU factorization whenever the assembled Jacobian
    /// is unchanged since the last factorization (the fast path). Safe by
    /// construction — reuse only triggers on bit-identical matrices, so
    /// solutions are identical with the flag on or off.
    pub reuse_lu: bool,
    /// Scan each assembled system for NaN/Inf *before* factorizing and
    /// report a structured [`SpiceError::Numeric`] with row/column
    /// provenance instead of letting the poison surface steps later as an
    /// unrelated-looking singular matrix. Off by default: the legacy error
    /// taxonomy is part of the bit-exact golden contract; the rescue
    /// policy switches it on (see [`crate::rescue::RescuePolicy`]).
    pub numeric_guard: bool,
    /// Linear-solver backend: dense kernel, sparse symbolic/numeric LU, or
    /// the size/density heuristic. Defaults to the `UWB_AMS_SOLVER`
    /// environment override (`auto` when unset), under which every
    /// single-instance netlist in the workspace stays on the dense kernel
    /// — bit-exact vs the pre-sparse history.
    pub solver: SolverKind,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 200,
            vntol: 1e-6,
            reltol: 1e-3,
            max_step: 0.5,
            reuse_lu: true,
            numeric_guard: false,
            solver: SolverKind::from_env(),
        }
    }
}

/// Preallocated per-layout solve buffers and the LU factorization cache.
///
/// One instance lives inside each [`crate::tran::TransientSimulator`] (and
/// each `dcop` call), so the hot path allocates nothing per Newton
/// iteration and can carry a factorization across iterations and steps.
#[derive(Debug, Clone)]
pub(crate) struct NewtonWorkspace {
    rhs: Vec<f64>,
    x_new: Vec<f64>,
    backend: Backend,
}

/// The linear-solver half of a [`NewtonWorkspace`]: dense matrix + cached
/// partial-pivot LU (the legacy path, bit-exact vs history) or triplet
/// sparse matrix + split symbolic/numeric LU.
#[derive(Debug, Clone)]
enum Backend {
    Dense {
        mat: Matrix,
        lu: LuFactors,
        /// Raw copy of the matrix the cached `lu` factors.
        a_cached: Vec<f64>,
        lu_valid: bool,
    },
    Sparse {
        mat: SparseMatrix<f64>,
        /// Symbolic pattern + pinned-pattern numeric factors; `None` until
        /// the first analysis (or after a structural recompile). Boxed so
        /// the enum stays close to the dense variant in size.
        factors: Option<Box<(SymbolicLu, NumericLu<f64>)>>,
        /// Raw copy of the CSC values the cached factors eliminate —
        /// the sparse twin of the dense byte-compare reuse test.
        vals_cached: Vec<f64>,
        cache_valid: bool,
    },
}

impl NewtonWorkspace {
    /// Dense-backend workspace (the legacy constructor; rescue rungs and
    /// small circuits use it directly).
    pub(crate) fn new(n: usize) -> Self {
        NewtonWorkspace {
            rhs: vec![0.0; n],
            x_new: vec![0.0; n],
            backend: Backend::Dense {
                mat: Matrix::square(n),
                lu: LuFactors::new(n),
                a_cached: vec![0.0; n * n],
                lu_valid: false,
            },
        }
    }

    /// Sparse-backend workspace.
    pub(crate) fn sparse(n: usize) -> Self {
        NewtonWorkspace {
            rhs: vec![0.0; n],
            x_new: vec![0.0; n],
            backend: Backend::Sparse {
                mat: SparseMatrix::new(n),
                factors: None,
                vals_cached: Vec::new(),
                cache_valid: false,
            },
        }
    }

    /// Picks the backend for `circuit` from `kind` and the stamp-footprint
    /// density estimate.
    pub(crate) fn for_circuit(circuit: &Circuit, layout: &MnaLayout, kind: SolverKind) -> Self {
        if kind.picks_sparse(layout.size(), estimate_nnz(circuit, layout)) {
            Self::sparse(layout.size())
        } else {
            Self::new(layout.size())
        }
    }

    /// `true` when this workspace routes solves through the sparse kernel.
    #[cfg(test)]
    pub(crate) fn is_sparse(&self) -> bool {
        matches!(self.backend, Backend::Sparse { .. })
    }
}

/// One damped Newton solve at fixed `gmin`/`source_scale`.
///
/// Returns the converged solution or the last iterate with an error.
/// Circuits without nonlinear devices take the fast path: a single
/// assemble + solve is exact, so the damping/confirmation loop is skipped
/// entirely ("linear circuits fall out of Newton").
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_solve(
    circuit: &Circuit,
    layout: &MnaLayout,
    x0: &[f64],
    mode: AssembleMode<'_>,
    t: f64,
    externals: &[f64],
    gmin: f64,
    source_scale: f64,
    opts: &NewtonOptions,
    ws: &mut NewtonWorkspace,
    counters: &mut PerfCounters,
) -> Result<Vec<f64>, SpiceError> {
    let n = layout.size();
    let mut x = x0.to_vec();
    let params = AssembleParams {
        t,
        externals,
        gmin,
        source_scale,
    };
    let n_volt = layout.n_nodes() - 1;
    let mut last_delta = f64::INFINITY;
    let linear = circuit.is_linear();
    let NewtonWorkspace {
        rhs,
        x_new,
        backend,
    } = ws;
    for _ in 0..opts.max_iter {
        counters.newton_iterations += 1;
        match backend {
            Backend::Dense {
                mat,
                lu,
                a_cached,
                lu_valid,
            } => {
                assemble(circuit, layout, &x, mode, &params, mat, rhs)?;
                if opts.numeric_guard {
                    if let Err(fault) = sim_core::linalg::check_finite_matrix(mat)
                        .and_then(|()| sim_core::linalg::check_finite_vec(rhs, "rhs"))
                    {
                        return Err(SpiceError::Numeric {
                            analysis: "dcop",
                            fault,
                        });
                    }
                }
                if opts.reuse_lu && *lu_valid && mat.data() == &a_cached[..] {
                    counters.lu_reuses += 1;
                } else {
                    a_cached.copy_from_slice(mat.data());
                    counters.lu_factorizations += 1;
                    match lu.factorize(mat) {
                        Ok(()) => *lu_valid = true,
                        Err(e) => {
                            *lu_valid = false;
                            return Err(SpiceError::Singular {
                                analysis: "dcop",
                                order: e.order,
                                pivot: e.pivot,
                            });
                        }
                    }
                }
                x_new.copy_from_slice(rhs);
                lu.solve(x_new);
            }
            Backend::Sparse {
                mat,
                factors,
                vals_cached,
                cache_valid,
            } => {
                assemble(circuit, layout, &x, mode, &params, mat, rhs)?;
                if mat.finish_assembly() {
                    // Stamp sequence diverged: the CSC structure was
                    // recompiled, so the pinned pattern and value cache
                    // are both meaningless.
                    *factors = None;
                    *cache_valid = false;
                }
                if opts.numeric_guard {
                    if let Err(fault) = mat
                        .check_finite()
                        .and_then(|()| sim_core::linalg::check_finite_vec(rhs, "rhs"))
                    {
                        return Err(SpiceError::Numeric {
                            analysis: "dcop",
                            fault,
                        });
                    }
                }
                let reuse = opts.reuse_lu
                    && *cache_valid
                    && factors.is_some()
                    && mat.values() == &vals_cached[..];
                if reuse {
                    counters.lu_reuses += 1;
                } else {
                    vals_cached.clear();
                    vals_cached.extend_from_slice(mat.values());
                    *cache_valid = true;
                    let mut refactored = false;
                    if let Some((sym, num)) = factors.as_deref_mut() {
                        match sym.refactor(mat, num) {
                            RefactorOutcome::Refactored => {
                                counters.numeric_refactors += 1;
                                counters.lu_factorizations += 1;
                                refactored = true;
                            }
                            RefactorOutcome::Stale => {
                                counters.pattern_fallbacks += 1;
                            }
                        }
                    }
                    if !refactored {
                        counters.symbolic_analyses += 1;
                        counters.lu_factorizations += 1;
                        match SymbolicLu::analyze(mat) {
                            Ok(pair) => *factors = Some(Box::new(pair)),
                            Err(e) => {
                                *factors = None;
                                *cache_valid = false;
                                return Err(SpiceError::Singular {
                                    analysis: "dcop",
                                    order: e.order,
                                    pivot: e.pivot,
                                });
                            }
                        }
                    }
                }
                x_new.copy_from_slice(rhs);
                match factors.as_deref() {
                    Some((sym, num)) => sym.solve(num, x_new),
                    None => {
                        return Err(SpiceError::Singular {
                            analysis: "dcop",
                            order: n,
                            pivot: n,
                        })
                    }
                }
            }
        }
        if linear {
            // Affine system: the solve is exact — accept undamped.
            if x_new.iter().any(|v| !v.is_finite()) {
                return Err(SpiceError::Singular {
                    analysis: "dcop",
                    order: n,
                    pivot: n,
                });
            }
            x.copy_from_slice(x_new);
            return Ok(x);
        }
        // Damping: clamp the largest node-voltage update.
        let mut max_dv = 0.0f64;
        for (xn, xv) in x_new.iter().zip(x.iter()).take(n_volt) {
            max_dv = max_dv.max((xn - xv).abs());
        }
        let scale = if max_dv > opts.max_step {
            opts.max_step / max_dv
        } else {
            1.0
        };
        let mut converged = scale == 1.0;
        for (i, xv) in x.iter_mut().enumerate() {
            let delta = (x_new[i] - *xv) * scale;
            *xv += delta;
            if i < n_volt && delta.abs() > opts.vntol + opts.reltol * xv.abs() {
                converged = false;
            }
        }
        last_delta = max_dv * scale;
        if converged {
            if x.iter().any(|v| !v.is_finite()) {
                return Err(SpiceError::Singular {
                    analysis: "dcop",
                    order: n,
                    pivot: n,
                });
            }
            return Ok(x);
        }
    }
    Err(SpiceError::DcopDiverged {
        iterations: counters.newton_iterations as usize,
        delta: last_delta,
    })
}

/// A converged DC solution.
#[derive(Debug, Clone)]
pub struct DcSolution {
    /// Raw unknown vector.
    pub x: Vec<f64>,
    pub(crate) layout: MnaLayout,
    /// Total Newton iterations spent (including homotopy stages).
    pub iterations: usize,
    /// Work counters for the whole operating-point search.
    pub counters: PerfCounters,
}

impl DcSolution {
    /// Voltage of `node`.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.layout.voltage(&self.x, node)
    }

    /// The layout used (for follow-on analyses).
    pub fn layout(&self) -> &MnaLayout {
        &self.layout
    }

    /// Per-MOSFET bias report: name, operating region, drain current and
    /// small-signal gm — the working view an analog designer checks first
    /// after an operating point.
    pub fn mosfet_report(&self, circuit: &Circuit) -> Vec<MosfetBias> {
        use crate::circuit::Element;
        use crate::mosfet::eval_mosfet;
        let v = |n| self.layout.voltage(&self.x, n);
        circuit
            .elements()
            .iter()
            .filter_map(|(name, e)| match e {
                Element::Mosfet {
                    d,
                    g,
                    s: src,
                    b,
                    model,
                    w,
                    l,
                } => {
                    let (ev, _) = eval_mosfet(
                        &circuit.models[*model].1,
                        *w,
                        *l,
                        v(*g),
                        v(*d),
                        v(*src),
                        v(*b),
                    );
                    Some(MosfetBias {
                        name: name.clone(),
                        region: ev.region,
                        ids: ev.ids,
                        gm: ev.gm,
                        vgs: v(*g) - v(*src),
                        vds: v(*d) - v(*src),
                    })
                }
                _ => None,
            })
            .collect()
    }
}

/// One MOSFET's bias point (see [`DcSolution::mosfet_report`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MosfetBias {
    /// Element name.
    pub name: String,
    /// Operating region.
    pub region: crate::mosfet::MosRegion,
    /// Drain current (drain→source convention), A.
    pub ids: f64,
    /// Transconductance, S.
    pub gm: f64,
    /// Gate-source voltage, V.
    pub vgs: f64,
    /// Drain-source voltage, V.
    pub vds: f64,
}

impl std::fmt::Display for MosfetBias {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>8}: {:?}, Ids = {:+.3e} A, gm = {:.3e} S, Vgs = {:+.3} V, Vds = {:+.3} V",
            self.name, self.region, self.ids, self.gm, self.vgs, self.vds
        )
    }
}

/// Final gmin used once homotopy succeeds.
pub(crate) const GMIN_FINAL: f64 = 1e-12;

/// Computes the DC operating point of `circuit` with external inputs.
///
/// Strategy: plain Newton at `gmin = 1e-12`; on failure, gmin stepping from
/// 1e-3 down; on failure, source stepping 0.1 → 1.0 with gmin relaxed.
///
/// # Errors
///
/// [`SpiceError::DcopDiverged`] if every homotopy fails, or
/// [`SpiceError::Singular`] for structurally defective circuits.
pub fn dcop_with(circuit: &Circuit, externals: &[f64]) -> Result<DcSolution, SpiceError> {
    dcop_impl(circuit, externals, &NewtonOptions::default(), None)
}

/// [`dcop_with`] seeded by a warm-start guess — typically the previous
/// Monte-Carlo point's converged operating point. A stage-0 Newton solve
/// runs directly from `guess`; when it converges (the common case for
/// small parameter perturbations) the whole homotopy ladder is skipped and
/// `warm_start_hits` is incremented. On any stage-0 failure the standard
/// cold-start strategy runs unchanged, so results never depend on the
/// guess being good.
///
/// # Errors
///
/// See [`dcop_with`].
pub fn dcop_with_guess(
    circuit: &Circuit,
    externals: &[f64],
    guess: &[f64],
) -> Result<DcSolution, SpiceError> {
    dcop_impl(circuit, externals, &NewtonOptions::default(), Some(guess))
}

pub(crate) fn dcop_impl(
    circuit: &Circuit,
    externals: &[f64],
    opts: &NewtonOptions,
    guess: Option<&[f64]>,
) -> Result<DcSolution, SpiceError> {
    let layout = MnaLayout::new(circuit);
    let x0 = vec![0.0; layout.size()];
    let mut ws = NewtonWorkspace::for_circuit(circuit, &layout, opts.solver);
    let mut counters = PerfCounters::new();

    // Stage 0: warm start from the caller's guess (Monte-Carlo chains).
    if let Some(g) = guess {
        if g.len() == layout.size() {
            if let Ok(x) = newton_solve(
                circuit,
                &layout,
                g,
                AssembleMode::Dc,
                0.0,
                externals,
                GMIN_FINAL,
                1.0,
                opts,
                &mut ws,
                &mut counters,
            ) {
                counters.warm_start_hits += 1;
                return Ok(DcSolution {
                    x,
                    layout,
                    iterations: counters.newton_iterations as usize,
                    counters,
                });
            }
        }
    }

    // Stage 1: direct.
    if let Ok(x) = newton_solve(
        circuit,
        &layout,
        &x0,
        AssembleMode::Dc,
        0.0,
        externals,
        GMIN_FINAL,
        1.0,
        opts,
        &mut ws,
        &mut counters,
    ) {
        return Ok(DcSolution {
            x,
            layout,
            iterations: counters.newton_iterations as usize,
            counters,
        });
    }

    // Stage 2: gmin stepping.
    let mut x = x0.clone();
    let mut ok = true;
    for exp in [3, 4, 5, 6, 7, 8, 9, 10, 11, 12] {
        let gmin = 10f64.powi(-exp);
        match newton_solve(
            circuit,
            &layout,
            &x,
            AssembleMode::Dc,
            0.0,
            externals,
            gmin,
            1.0,
            opts,
            &mut ws,
            &mut counters,
        ) {
            Ok(sol) => x = sol,
            Err(_) => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        return Ok(DcSolution {
            x,
            layout,
            iterations: counters.newton_iterations as usize,
            counters,
        });
    }

    // Stage 3: source stepping (at modest gmin, then tighten).
    let mut x = x0;
    for step in 1..=10 {
        let scale = step as f64 / 10.0;
        x = newton_solve(
            circuit,
            &layout,
            &x,
            AssembleMode::Dc,
            0.0,
            externals,
            1e-9,
            scale,
            opts,
            &mut ws,
            &mut counters,
        )
        .map_err(|_| SpiceError::DcopDiverged {
            iterations: counters.newton_iterations as usize,
            delta: f64::NAN,
        })?;
    }
    let x = newton_solve(
        circuit,
        &layout,
        &x,
        AssembleMode::Dc,
        0.0,
        externals,
        GMIN_FINAL,
        1.0,
        opts,
        &mut ws,
        &mut counters,
    )?;
    Ok(DcSolution {
        x,
        layout,
        iterations: counters.newton_iterations as usize,
        counters,
    })
}

/// [`dcop_with`] for circuits without external inputs.
///
/// # Errors
///
/// See [`dcop_with`].
pub fn dcop(circuit: &Circuit) -> Result<DcSolution, SpiceError> {
    dcop_with(circuit, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SourceWave;
    use crate::mosfet::MosParams;

    #[test]
    fn divider_op() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(1.8));
        c.resistor("R1", a, b, 10e3);
        c.resistor("R2", b, Circuit::gnd(), 20e3);
        let op = dcop(&c).unwrap();
        assert!((op.voltage(b) - 1.2).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_nmos_settles() {
        // Vdd -- R -- drain=gate of NMOS to ground: classic bias leg.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let d = c.node("d");
        c.add_model("nch", MosParams::nmos_018());
        c.vsource("VDD", vdd, Circuit::gnd(), SourceWave::Dc(1.8));
        c.resistor("RB", vdd, d, 10e3);
        c.mosfet(
            "M1",
            d,
            d,
            Circuit::gnd(),
            Circuit::gnd(),
            "nch",
            10e-6,
            1e-6,
        )
        .unwrap();
        let op = dcop(&c).unwrap();
        let vgs = op.voltage(d);
        // Must sit above threshold, below supply.
        assert!(vgs > 0.45 && vgs < 1.2, "vgs = {vgs}");
        // KCL check: resistor current equals device saturation current.
        let ir = (1.8 - vgs) / 10e3;
        let p = MosParams::nmos_018();
        let (ev, _) = crate::mosfet::eval_mosfet(&p, 10e-6, 1e-6, vgs, vgs, 0.0, 0.0);
        assert!((ir - ev.ids).abs() / ir < 1e-3, "ir={ir}, ids={}", ev.ids);
    }

    #[test]
    fn nmos_inverter_transfer_points() {
        // NMOS common-source with resistive load.
        let build = |vin: f64| {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let vi = c.node("in");
            let vo = c.node("out");
            c.add_model("nch", MosParams::nmos_018());
            c.vsource("VDD", vdd, Circuit::gnd(), SourceWave::Dc(1.8));
            c.vsource("VIN", vi, Circuit::gnd(), SourceWave::Dc(vin));
            c.resistor("RL", vdd, vo, 10e3);
            c.mosfet(
                "M1",
                vo,
                vi,
                Circuit::gnd(),
                Circuit::gnd(),
                "nch",
                10e-6,
                1e-6,
            )
            .unwrap();
            dcop(&c).unwrap().voltage(vo)
        };
        let off = build(0.0);
        let on = build(1.8);
        assert!((off - 1.8).abs() < 1e-3, "off-state output = {off}");
        assert!(on < 0.2, "on-state output = {on}");
    }

    #[test]
    fn cmos_inverter_rails() {
        let build = |vin: f64| {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let vi = c.node("in");
            let vo = c.node("out");
            c.add_model("nch", MosParams::nmos_018());
            c.add_model("pch", MosParams::pmos_018());
            c.vsource("VDD", vdd, Circuit::gnd(), SourceWave::Dc(1.8));
            c.vsource("VIN", vi, Circuit::gnd(), SourceWave::Dc(vin));
            c.mosfet(
                "MN",
                vo,
                vi,
                Circuit::gnd(),
                Circuit::gnd(),
                "nch",
                2e-6,
                0.18e-6,
            )
            .unwrap();
            c.mosfet("MP", vo, vi, vdd, vdd, "pch", 6e-6, 0.18e-6)
                .unwrap();
            dcop(&c).unwrap().voltage(vo)
        };
        assert!(build(0.0) > 1.75);
        assert!(build(1.8) < 0.05);
        let mid = build(0.9);
        assert!(mid > 0.2 && mid < 1.6, "mid transfer = {mid}");
    }

    #[test]
    fn current_mirror_ratio() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let ref_n = c.node("ref");
        let out = c.node("out");
        c.add_model("nch", MosParams::nmos_018());
        c.vsource("VDD", vdd, Circuit::gnd(), SourceWave::Dc(1.8));
        // 100 µA into the diode device.
        c.isource("IB", vdd, ref_n, SourceWave::Dc(100e-6));
        c.mosfet(
            "M1",
            ref_n,
            ref_n,
            Circuit::gnd(),
            Circuit::gnd(),
            "nch",
            10e-6,
            1e-6,
        )
        .unwrap();
        // Mirror 2× into a resistor load.
        c.mosfet(
            "M2",
            out,
            ref_n,
            Circuit::gnd(),
            Circuit::gnd(),
            "nch",
            20e-6,
            1e-6,
        )
        .unwrap();
        c.resistor("RL", vdd, out, 3e3);
        let op = dcop(&c).unwrap();
        let i_out = (1.8 - op.voltage(out)) / 3e3;
        // ~200 µA (λ mismatch allows a tolerance).
        assert!((i_out - 200e-6).abs() < 30e-6, "i_out = {i_out}");
    }

    #[test]
    fn transmission_gate_passes_voltage() {
        // NMOS+PMOS pass gate driven on, passing 0.9 V to a load.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let src = c.node("src");
        let dst = c.node("dst");
        c.add_model("nch", MosParams::nmos_018());
        c.add_model("pch", MosParams::pmos_018());
        c.vsource("VDD", vdd, Circuit::gnd(), SourceWave::Dc(1.8));
        c.vsource("VS", src, Circuit::gnd(), SourceWave::Dc(0.9));
        c.mosfet("MN", src, vdd, dst, Circuit::gnd(), "nch", 5e-6, 0.18e-6)
            .unwrap();
        c.mosfet("MP", src, Circuit::gnd(), dst, vdd, "pch", 10e-6, 0.18e-6)
            .unwrap();
        c.resistor("RL", dst, Circuit::gnd(), 1e6);
        let op = dcop(&c).unwrap();
        assert!(
            (op.voltage(dst) - 0.9).abs() < 0.02,
            "v = {}",
            op.voltage(dst)
        );
    }

    fn cmos_inverter(vin: f64) -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vi = c.node("in");
        let vo = c.node("out");
        c.add_model("nch", MosParams::nmos_018());
        c.add_model("pch", MosParams::pmos_018());
        c.vsource("VDD", vdd, Circuit::gnd(), SourceWave::Dc(1.8));
        c.vsource("VIN", vi, Circuit::gnd(), SourceWave::Dc(vin));
        c.mosfet(
            "MN",
            vo,
            vi,
            Circuit::gnd(),
            Circuit::gnd(),
            "nch",
            2e-6,
            0.18e-6,
        )
        .unwrap();
        c.mosfet("MP", vo, vi, vdd, vdd, "pch", 6e-6, 0.18e-6)
            .unwrap();
        (c, vo)
    }

    #[test]
    fn sparse_backend_matches_dense_operating_point() {
        let (c, vo) = cmos_inverter(0.9);
        let solve = |kind| {
            dcop_impl(
                &c,
                &[],
                &NewtonOptions {
                    solver: kind,
                    ..NewtonOptions::default()
                },
                None,
            )
            .unwrap()
        };
        let dense = solve(SolverKind::Dense);
        let sparse = solve(SolverKind::Sparse);
        // One symbolic analysis, every later Newton iteration a numeric
        // refactor on the pinned pattern.
        assert!(
            sparse.counters.symbolic_analyses >= 1,
            "{}",
            sparse.counters
        );
        assert!(
            sparse.counters.numeric_refactors >= 1,
            "{}",
            sparse.counters
        );
        assert_eq!(dense.counters.symbolic_analyses, 0);
        let layout = dense.layout();
        for node in 0..layout.n_nodes() {
            let (a, b) = (dense.voltage(NodeId(node)), sparse.voltage(NodeId(node)));
            assert!((a - b).abs() < 1e-9, "node {node}: dense {a} vs sparse {b}");
        }
        assert!((dense.voltage(vo) - sparse.voltage(vo)).abs() < 1e-9);
        // Backend selection: explicit sparse forces it, auto keeps this
        // tiny circuit dense.
        let layout = MnaLayout::new(&c);
        assert!(NewtonWorkspace::for_circuit(&c, &layout, SolverKind::Sparse).is_sparse());
        assert!(!NewtonWorkspace::for_circuit(&c, &layout, SolverKind::Auto).is_sparse());
        assert!(!NewtonWorkspace::for_circuit(&c, &layout, SolverKind::Dense).is_sparse());
    }

    #[test]
    fn warm_start_from_converged_op_is_counted_and_cheap() {
        let (c, vo) = cmos_inverter(0.9);
        let cold = dcop(&c).unwrap();
        let warm = dcop_with_guess(&c, &[], &cold.x).unwrap();
        assert_eq!(warm.counters.warm_start_hits, 1, "{}", warm.counters);
        assert!(
            warm.counters.newton_iterations <= cold.counters.newton_iterations,
            "warm {} vs cold {}",
            warm.counters.newton_iterations,
            cold.counters.newton_iterations
        );
        assert!((warm.voltage(vo) - cold.voltage(vo)).abs() < 1e-9);
        // A wrong-length guess is ignored, not an error.
        let fallback = dcop_with_guess(&c, &[], &[0.0]).unwrap();
        assert_eq!(fallback.counters.warm_start_hits, 0);
        assert!((fallback.voltage(vo) - cold.voltage(vo)).abs() < 1e-12);
    }

    #[test]
    fn floating_node_is_held_by_gmin_not_fatal() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(1.0));
        c.resistor("R1", a, b, 1e3);
        // b only connects through R1: gmin to ground defines it.
        let op = dcop(&c).unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-3);
    }
}
