//! Receiver analog front-end: LNA → BPF → VGA → squarer.
//!
//! All blocks are behavioural at the Phase II abstraction — ideal equations
//! plus the effects the paper keeps even at this level (saturation in every
//! stage, quantised VGA gain steps via the AGC DAC).

use crate::filters::BandPass;

/// Low-noise amplifier: fixed gain, band-pass response, saturation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lna {
    gain: f64,
    clip: f64,
    bpf: BandPass,
}

/// LNA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LnaConfig {
    /// Voltage gain, dB.
    pub gain_db: f64,
    /// Band-pass lower corner, Hz.
    pub f_low: f64,
    /// Band-pass upper corner, Hz.
    pub f_high: f64,
    /// Output saturation, V.
    pub clip: f64,
}

impl Default for LnaConfig {
    fn default() -> Self {
        LnaConfig {
            gain_db: 20.0,
            f_low: 100e6,
            f_high: 8e9,
            clip: 0.9,
        }
    }
}

impl Lna {
    /// Builds the LNA from its configuration.
    pub fn new(cfg: &LnaConfig) -> Self {
        Lna {
            gain: 10f64.powf(cfg.gain_db / 20.0),
            clip: cfg.clip,
            bpf: BandPass::new(cfg.f_low, cfg.f_high),
        }
    }

    /// Processes one input sample.
    pub fn process(&mut self, x: f64, dt: f64) -> f64 {
        let y = self.bpf.process(x, dt) * self.gain;
        y.clamp(-self.clip, self.clip)
    }

    /// Clears filter state.
    pub fn reset(&mut self) {
        self.bpf.reset();
    }
}

/// Variable-gain amplifier with DAC-quantised gain steps (the AGC writes
/// the integer gain code, exactly as the paper's DAC-in-the-AGC does).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vga {
    cfg: VgaConfig,
    code: i32,
    gain: f64,
    clip: f64,
}

/// VGA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VgaConfig {
    /// Gain at code 0, dB.
    pub min_gain_db: f64,
    /// Gain step per code, dB.
    pub step_db: f64,
    /// Highest code (codes are `0..=max_code`).
    pub max_code: i32,
    /// Output saturation, V.
    pub clip: f64,
}

impl Default for VgaConfig {
    fn default() -> Self {
        VgaConfig {
            min_gain_db: 0.0,
            step_db: 2.0,
            max_code: 20,
            clip: 0.9,
        }
    }
}

impl Vga {
    /// Builds the VGA at code 0.
    pub fn new(cfg: &VgaConfig) -> Self {
        let mut v = Vga {
            cfg: *cfg,
            code: 0,
            gain: 0.0,
            clip: cfg.clip,
        };
        v.set_code(cfg.max_code / 2);
        v
    }

    /// Sets the gain code (clamped to the valid range).
    pub fn set_code(&mut self, code: i32) {
        self.code = code.clamp(0, self.cfg.max_code);
        let db = self.cfg.min_gain_db + self.cfg.step_db * self.code as f64;
        self.gain = 10f64.powf(db / 20.0);
    }

    /// Current gain code.
    pub fn code(&self) -> i32 {
        self.code
    }

    /// Current gain, dB.
    pub fn gain_db(&self) -> f64 {
        self.cfg.min_gain_db + self.cfg.step_db * self.code as f64
    }

    /// Processes one sample.
    pub fn process(&self, x: f64) -> f64 {
        (x * self.gain).clamp(-self.clip, self.clip)
    }
}

/// Squaring device `( )²` of the energy-detection receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Squarer {
    /// Multiplier scale, 1/V (output = `k · x²`).
    pub k: f64,
    /// Output saturation, V.
    pub clip: f64,
}

impl Default for Squarer {
    fn default() -> Self {
        Squarer { k: 1.0, clip: 1.5 }
    }
}

impl Squarer {
    /// Processes one sample.
    pub fn process(&self, x: f64) -> f64 {
        (self.k * x * x).min(self.clip)
    }
}

/// Decaying peak detector — the sensing element of the first loop of the
/// paper's proposed two-stage AGC ("a first one, at the front-end
/// beginning, which controls the signal amplitudes so that saturation at
/// the input is avoided").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakDetector {
    tau: f64,
    peak: f64,
}

impl PeakDetector {
    /// Peak detector with decay time constant `tau` (s).
    ///
    /// # Panics
    ///
    /// Panics unless `tau > 0`.
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0, "decay must be positive");
        PeakDetector { tau, peak: 0.0 }
    }

    /// Tracks `|x|`: instant attack, exponential release.
    pub fn process(&mut self, x: f64, dt: f64) -> f64 {
        let mag = x.abs();
        if mag >= self.peak {
            self.peak = mag;
        } else {
            self.peak *= (-dt / self.tau).exp();
        }
        self.peak
    }

    /// Current held peak.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Clears the held peak.
    pub fn reset(&mut self) {
        self.peak = 0.0;
    }
}

/// The assembled front end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontEnd {
    /// LNA stage.
    pub lna: Lna,
    /// VGA stage.
    pub vga: Vga,
    /// Squarer stage.
    pub squarer: Squarer,
}

impl FrontEnd {
    /// Builds the chain from block configurations.
    pub fn new(lna: &LnaConfig, vga: &VgaConfig, squarer: Squarer) -> Self {
        FrontEnd {
            lna: Lna::new(lna),
            vga: Vga::new(vga),
            squarer,
        }
    }

    /// One antenna sample in, one squared sample out.
    pub fn process(&mut self, x: f64, dt: f64) -> f64 {
        let a = self.lna.process(x, dt);
        let b = self.vga.process(a);
        self.squarer.process(b)
    }

    /// Clears filter state (gain code survives).
    pub fn reset(&mut self) {
        self.lna.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lna_gain_in_band() {
        let mut lna = Lna::new(&LnaConfig::default());
        let dt = 50e-12;
        // 1 GHz tone at 10 mV: well inside the band.
        let mut peak = 0.0f64;
        for i in 0..100_000 {
            let t = i as f64 * dt;
            let x = 0.01 * (2.0 * std::f64::consts::PI * 1e9 * t).sin();
            let y = lna.process(x, dt);
            if t > 2e-6 {
                peak = peak.max(y.abs());
            }
        }
        assert!((peak - 0.1).abs() < 0.02, "×10 gain: {peak}");
    }

    #[test]
    fn lna_saturates() {
        let mut lna = Lna::new(&LnaConfig::default());
        let mut y = 0.0;
        for _ in 0..100 {
            y = lna.process(1.0, 50e-12);
        }
        assert!(y <= 0.9 + 1e-12);
    }

    #[test]
    fn vga_codes_step_gain() {
        let mut vga = Vga::new(&VgaConfig::default());
        vga.set_code(0);
        assert_eq!(vga.gain_db(), 0.0);
        assert!((vga.process(0.1) - 0.1).abs() < 1e-12);
        vga.set_code(10);
        assert_eq!(vga.gain_db(), 20.0);
        assert!((vga.process(0.01) - 0.1).abs() < 1e-12);
        // Clamped codes.
        vga.set_code(1000);
        assert_eq!(vga.code(), 20);
        vga.set_code(-5);
        assert_eq!(vga.code(), 0);
    }

    #[test]
    fn vga_saturates() {
        let mut vga = Vga::new(&VgaConfig::default());
        vga.set_code(20);
        assert_eq!(vga.process(1.0), 0.9);
        assert_eq!(vga.process(-1.0), -0.9);
    }

    #[test]
    fn squarer_is_even_and_clipped() {
        let s = Squarer::default();
        assert_eq!(s.process(0.3), s.process(-0.3));
        assert!((s.process(0.3) - 0.09).abs() < 1e-12);
        assert_eq!(s.process(10.0), 1.5);
    }

    #[test]
    fn peak_detector_attacks_instantly_and_decays() {
        let mut pd = PeakDetector::new(10e-9);
        assert_eq!(pd.process(0.5, 1e-9), 0.5);
        assert_eq!(pd.process(-0.8, 1e-9), 0.8, "tracks magnitude");
        // Decay over one time constant ≈ ×1/e.
        let mut p = 0.8;
        for _ in 0..10 {
            p = pd.process(0.0, 1e-9);
        }
        assert!((p - 0.8 * (-1.0f64).exp()).abs() < 0.01, "decayed to {p}");
        pd.reset();
        assert_eq!(pd.peak(), 0.0);
    }

    #[test]
    fn chain_produces_positive_squared_output() {
        let mut fe = FrontEnd::new(
            &LnaConfig::default(),
            &VgaConfig::default(),
            Squarer::default(),
        );
        let dt = 50e-12;
        let mut max_out = 0.0f64;
        for i in 0..10_000 {
            let t = i as f64 * dt;
            let x = 0.003 * (2.0 * std::f64::consts::PI * 2e9 * t).sin();
            let y = fe.process(x, dt);
            assert!(y >= 0.0);
            max_out = max_out.max(y);
        }
        assert!(max_out > 0.0);
    }
}
