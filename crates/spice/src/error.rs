//! Error types for the circuit simulator.

use std::fmt;

/// Any failure raised by circuit construction or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The DC operating point iteration failed to converge.
    DcopDiverged {
        /// Iterations attempted across all homotopy stages.
        iterations: usize,
        /// Final voltage-update norm.
        delta: f64,
    },
    /// A matrix factorisation failed (floating node or degenerate circuit).
    Singular {
        /// Analysis in which it occurred ("dcop", "tran", "ac").
        analysis: &'static str,
        /// Order of the offending MNA system.
        order: usize,
        /// Pivot column at which elimination broke down; equals `order`
        /// when the factorization succeeded but the solve produced
        /// non-finite values.
        pivot: usize,
    },
    /// Newton failed during a transient step.
    TranDiverged {
        /// Time of the failing step in seconds.
        t: f64,
    },
    /// A numeric guard caught a NaN/Inf before it reached the linear
    /// solver (see [`sim_core::linalg::NumericFault`] for the provenance).
    Numeric {
        /// Analysis in which it occurred ("dcop", "tran", "ac").
        analysis: &'static str,
        /// Which operand went non-finite, and where.
        fault: sim_core::linalg::NumericFault,
    },
    /// A netlist line could not be parsed.
    Parse {
        /// 1-based line number in the deck.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A referenced model name was never defined.
    UnknownModel {
        /// The missing model name.
        name: String,
    },
    /// An element or node lookup by name failed.
    UnknownName {
        /// The name that could not be resolved.
        name: String,
    },
    /// An element was built with an invalid parameter.
    InvalidParameter {
        /// Element name.
        element: String,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::DcopDiverged { iterations, delta } => write!(
                f,
                "dc operating point failed to converge after {iterations} iterations (last delta {delta:.3e})"
            ),
            SpiceError::Singular {
                analysis,
                order,
                pivot,
            } => {
                write!(
                    f,
                    "singular MNA matrix during {analysis}: order {order}, pivot column {pivot} (floating node?)"
                )
            }
            SpiceError::TranDiverged { t } => {
                write!(f, "transient newton diverged at t = {t:.4e} s")
            }
            SpiceError::Numeric { analysis, fault } => {
                write!(f, "numeric fault during {analysis}: {fault}")
            }
            SpiceError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            SpiceError::UnknownModel { name } => write!(f, "unknown model '{name}'"),
            SpiceError::UnknownName { name } => write!(f, "unknown element or node '{name}'"),
            SpiceError::InvalidParameter { element, message } => {
                write!(f, "invalid parameter on '{element}': {message}")
            }
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpiceError::DcopDiverged {
            iterations: 300,
            delta: 0.5,
        };
        assert!(e.to_string().contains("300"));
        let e = SpiceError::Parse {
            line: 4,
            message: "bad value".into(),
        };
        assert!(e.to_string().contains("line 4"));
        let e = SpiceError::Singular {
            analysis: "ac",
            order: 5,
            pivot: 3,
        };
        assert!(e.to_string().contains("ac"));
        assert!(e.to_string().contains("order 5"));
        assert!(e.to_string().contains("column 3"));
        let e = SpiceError::Numeric {
            analysis: "tran",
            fault: sim_core::linalg::NumericFault {
                nan: true,
                row: 2,
                col: Some(1),
                stage: "matrix",
            },
        };
        assert!(e.to_string().contains("tran"), "{e}");
        assert!(e.to_string().contains("NaN"), "{e}");
        assert!(e.to_string().contains("(2, 1)"), "{e}");
    }
}
