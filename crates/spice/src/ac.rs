//! Small-signal AC analysis.
//!
//! Linearises the circuit around its DC operating point and solves the
//! complex MNA system at each requested frequency. This regenerates the
//! paper's Figure 4 (integrator AC response, `Voutd/Vin` in dB).

use crate::circuit::{Circuit, Element, NodeId};
use crate::dcop::{dcop_with, DcSolution};
use crate::error::SpiceError;
use crate::linalg::CMatrix;
use crate::mna::{estimate_nnz, switch_conductance, MnaLayout};
use crate::mosfet::eval_mosfet;
use crate::perf::PerfCounters;
use num_complex::Complex64;
use sim_core::gmres::gmres_solve;
use sim_core::ilu::{Ilu0, IluPattern};
use sim_core::sparse::{NumericLu, RefactorOutcome, SolverKind, SparseMatrix, SymbolicLu};

/// Result of an AC sweep: one complex solution vector per frequency.
#[derive(Debug, Clone)]
pub struct AcSweep {
    freqs: Vec<f64>,
    solutions: Vec<Vec<Complex64>>,
    layout: MnaLayout,
    counters: PerfCounters,
}

impl AcSweep {
    /// The sweep frequencies, Hz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Linear-solve work done across the sweep (one factorization per
    /// frequency on the dense path; on the sparse path the symbolic
    /// analysis is shared and later frequencies show as
    /// `numeric_refactors`).
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Complex node voltage at sweep point `i`.
    pub fn voltage(&self, i: usize, node: NodeId) -> Complex64 {
        match self.layout.node_unknown(node) {
            Some(k) => self.solutions[i][k],
            None => Complex64::new(0.0, 0.0),
        }
    }

    /// Complex differential voltage `v(p) − v(n)` at sweep point `i`.
    pub fn voltage_diff(&self, i: usize, p: NodeId, n: NodeId) -> Complex64 {
        self.voltage(i, p) - self.voltage(i, n)
    }

    /// Magnitude in dB of `v(p) − v(n)` across the sweep.
    pub fn gain_db(&self, p: NodeId, n: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|i| 20.0 * self.voltage_diff(i, p, n).norm().max(1e-300).log10())
            .collect()
    }

    /// Phase in degrees of `v(p) − v(n)` across the sweep.
    pub fn phase_deg(&self, p: NodeId, n: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|i| self.voltage_diff(i, p, n).arg().to_degrees())
            .collect()
    }

    /// Frequency (interpolated on the log axis) where the magnitude of
    /// `v(p) − v(n)` crosses `level_db`, scanning downward in frequency
    /// order; `None` when it never crosses.
    pub fn crossing(&self, p: NodeId, n: NodeId, level_db: f64) -> Option<f64> {
        let g = self.gain_db(p, n);
        for i in 1..g.len() {
            let (a, b) = (g[i - 1], g[i]);
            if (a >= level_db) != (b >= level_db) {
                let frac = (level_db - a) / (b - a);
                return Some(self.freqs[i - 1] * (self.freqs[i] / self.freqs[i - 1]).powf(frac));
            }
        }
        None
    }

    /// Bode magnitude as `(freq, dB)` pairs — the plotting-friendly view.
    pub fn bode_points(&self, p: NodeId, n: NodeId) -> Vec<(f64, f64)> {
        self.freqs.iter().copied().zip(self.gain_db(p, n)).collect()
    }
}

/// Logarithmic frequency sweep: `points_per_decade` points from `f_start`
/// to `f_stop` inclusive.
///
/// # Panics
///
/// Panics unless `0 < f_start < f_stop` and `points_per_decade ≥ 1`.
pub fn log_sweep(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(
        f_start > 0.0 && f_stop > f_start,
        "need 0 < f_start < f_stop"
    );
    assert!(points_per_decade >= 1);
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize;
    let mut freqs: Vec<f64> = (0..=n)
        .map(|i| f_start * 10f64.powf(decades * i as f64 / n as f64))
        .collect();
    if let Some(last) = freqs.last_mut() {
        *last = f_stop;
    }
    freqs
}

/// Runs an AC sweep around the operating point computed with `externals`.
///
/// AC stimuli are the elements built with a nonzero `ac_mag`
/// (see [`Circuit::vsource_ac`]).
///
/// # Errors
///
/// Propagates operating-point failures and singular AC matrices.
pub fn ac_analysis(
    circuit: &Circuit,
    externals: &[f64],
    freqs: &[f64],
) -> Result<AcSweep, SpiceError> {
    let op = dcop_with(circuit, externals)?;
    ac_analysis_at(circuit, &op, freqs)
}

/// AC sweep around an already-computed operating point, with the solver
/// backend taken from the `UWB_AMS_SOLVER` environment override.
///
/// # Errors
///
/// [`SpiceError::Singular`] if the complex MNA matrix cannot be factored.
pub fn ac_analysis_at(
    circuit: &Circuit,
    op: &DcSolution,
    freqs: &[f64],
) -> Result<AcSweep, SpiceError> {
    ac_analysis_at_with(circuit, op, freqs, SolverKind::from_env())
}

/// A complex matrix that AC stamps accumulate into — the complex twin of
/// [`crate::mna::Stamp`], implemented by the dense [`CMatrix`] and the
/// triplet-logging [`SparseMatrix<Complex64>`].
trait AcStamp {
    fn add_re(&mut self, r: usize, c: usize, v: f64);
    fn add_im(&mut self, r: usize, c: usize, v: f64);
}

impl AcStamp for CMatrix {
    fn add_re(&mut self, r: usize, c: usize, v: f64) {
        CMatrix::add_re(self, r, c, v);
    }
    fn add_im(&mut self, r: usize, c: usize, v: f64) {
        CMatrix::add_im(self, r, c, v);
    }
}

impl AcStamp for SparseMatrix<Complex64> {
    fn add_re(&mut self, r: usize, c: usize, v: f64) {
        self.add(r, c, Complex64::new(v, 0.0));
    }
    fn add_im(&mut self, r: usize, c: usize, v: f64) {
        self.add(r, c, Complex64::new(0.0, v));
    }
}

/// Stamps the small-signal system at angular frequency `omega` around the
/// operating point `op` into `mat`/`rhs`. The stamp *sequence* depends
/// only on the circuit, so on the sparse path every frequency replays the
/// same locked triplet structure.
fn assemble_ac<M: AcStamp>(
    circuit: &Circuit,
    layout: &MnaLayout,
    op: &DcSolution,
    omega: f64,
    mat: &mut M,
    rhs: &mut [Complex64],
) -> Result<(), SpiceError> {
    let v_at = |node: NodeId| layout.voltage(&op.x, node);
    let branch = |idx: usize, name: &str| {
        layout
            .branch_unknown(idx)
            .ok_or_else(|| SpiceError::InvalidParameter {
                element: name.to_string(),
                message: "voltage-defined element has no branch unknown in the MNA layout \
                          (layout computed for a different circuit?)"
                    .to_string(),
            })
    };
    {
        let stamp_g = |mat: &mut M, p: NodeId, nn: NodeId, g: f64| {
            let up = layout.node_unknown(p);
            let un = layout.node_unknown(nn);
            if let Some(i) = up {
                mat.add_re(i, i, g);
            }
            if let Some(j) = un {
                mat.add_re(j, j, g);
            }
            if let (Some(i), Some(j)) = (up, un) {
                mat.add_re(i, j, -g);
                mat.add_re(j, i, -g);
            }
        };
        let stamp_c = |mat: &mut M, p: NodeId, nn: NodeId, c: f64| {
            let b = omega * c;
            let up = layout.node_unknown(p);
            let un = layout.node_unknown(nn);
            if let Some(i) = up {
                mat.add_im(i, i, b);
            }
            if let Some(j) = un {
                mat.add_im(j, j, b);
            }
            if let (Some(i), Some(j)) = (up, un) {
                mat.add_im(i, j, -b);
                mat.add_im(j, i, -b);
            }
        };
        // Transconductance stamp: I(p→n) += gm · v(cp).
        let stamp_gm = |mat: &mut M, p: NodeId, nn: NodeId, ctrl: NodeId, gm: f64| {
            if let Some(col) = layout.node_unknown(ctrl) {
                if let Some(i) = layout.node_unknown(p) {
                    mat.add_re(i, col, gm);
                }
                if let Some(j) = layout.node_unknown(nn) {
                    mat.add_re(j, col, -gm);
                }
            }
        };

        for (idx, (name, e)) in circuit.elements().iter().enumerate() {
            match e {
                Element::Resistor { p, n: nn, r } => stamp_g(mat, *p, *nn, 1.0 / r),
                Element::Capacitor { p, n: nn, c, .. } => stamp_c(mat, *p, *nn, *c),
                Element::Vsource {
                    p, n: nn, ac_mag, ..
                } => {
                    let ib = branch(idx, name)?;
                    if let Some(i) = layout.node_unknown(*p) {
                        mat.add_re(i, ib, 1.0);
                        mat.add_re(ib, i, 1.0);
                    }
                    if let Some(j) = layout.node_unknown(*nn) {
                        mat.add_re(j, ib, -1.0);
                        mat.add_re(ib, j, -1.0);
                    }
                    rhs[ib] += Complex64::new(*ac_mag, 0.0);
                }
                Element::Isource {
                    p, n: nn, ac_mag, ..
                } => {
                    if let Some(i) = layout.node_unknown(*p) {
                        rhs[i] -= Complex64::new(*ac_mag, 0.0);
                    }
                    if let Some(j) = layout.node_unknown(*nn) {
                        rhs[j] += Complex64::new(*ac_mag, 0.0);
                    }
                }
                Element::Vcvs {
                    p,
                    n: nn,
                    cp,
                    cn,
                    gain,
                } => {
                    let ib = branch(idx, name)?;
                    if let Some(i) = layout.node_unknown(*p) {
                        mat.add_re(i, ib, 1.0);
                        mat.add_re(ib, i, 1.0);
                    }
                    if let Some(j) = layout.node_unknown(*nn) {
                        mat.add_re(j, ib, -1.0);
                        mat.add_re(ib, j, -1.0);
                    }
                    if let Some(k) = layout.node_unknown(*cp) {
                        mat.add_re(ib, k, -gain);
                    }
                    if let Some(k) = layout.node_unknown(*cn) {
                        mat.add_re(ib, k, *gain);
                    }
                }
                Element::Vccs {
                    p,
                    n: nn,
                    cp,
                    cn,
                    gm,
                } => {
                    stamp_gm(mat, *p, *nn, *cp, *gm);
                    stamp_gm(mat, *p, *nn, *cn, -*gm);
                }
                Element::Cccs {
                    p,
                    n: nn,
                    ctrl,
                    gain,
                } => {
                    let ib_ctrl = branch(*ctrl, name)?;
                    if let Some(i) = layout.node_unknown(*p) {
                        mat.add_re(i, ib_ctrl, *gain);
                    }
                    if let Some(j) = layout.node_unknown(*nn) {
                        mat.add_re(j, ib_ctrl, -*gain);
                    }
                }
                Element::Ccvs { p, n: nn, ctrl, rm } => {
                    let ib = branch(idx, name)?;
                    let ib_ctrl = branch(*ctrl, name)?;
                    if let Some(i) = layout.node_unknown(*p) {
                        mat.add_re(i, ib, 1.0);
                        mat.add_re(ib, i, 1.0);
                    }
                    if let Some(j) = layout.node_unknown(*nn) {
                        mat.add_re(j, ib, -1.0);
                        mat.add_re(ib, j, -1.0);
                    }
                    mat.add_re(ib, ib_ctrl, -*rm);
                }
                Element::Switch {
                    p,
                    n: nn,
                    cp,
                    cn,
                    ron,
                    roff,
                    vt,
                    vs,
                } => {
                    let vc = v_at(*cp) - v_at(*cn);
                    let g = switch_conductance(vc, *ron, *roff, *vt, *vs);
                    stamp_g(mat, *p, *nn, g);
                }
                Element::Diode { p, n: nn, is, nf } => {
                    let v = v_at(*p) - v_at(*nn);
                    let (_, g) = crate::mna::diode_iv(*is, *nf, v);
                    stamp_g(mat, *p, *nn, g + 1e-12);
                }
                Element::Inductor { p, n: nn, l } => {
                    let ib = branch(idx, name)?;
                    if let Some(i) = layout.node_unknown(*p) {
                        mat.add_re(i, ib, 1.0);
                        mat.add_re(ib, i, 1.0);
                    }
                    if let Some(j) = layout.node_unknown(*nn) {
                        mat.add_re(j, ib, -1.0);
                        mat.add_re(ib, j, -1.0);
                    }
                    mat.add_im(ib, ib, -omega * l);
                }
                Element::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    model,
                    w,
                    l,
                } => {
                    let pm = &circuit.models[*model].1;
                    let (vg, vd, vs_, vb) = (v_at(*g), v_at(*d), v_at(*s), v_at(*b));
                    let h = 1e-6;
                    let ids = |vg: f64, vd: f64, vs: f64, vb: f64| {
                        eval_mosfet(pm, *w, *l, vg, vd, vs, vb).0.ids
                    };
                    let gg = (ids(vg + h, vd, vs_, vb) - ids(vg - h, vd, vs_, vb)) / (2.0 * h);
                    let gd = (ids(vg, vd + h, vs_, vb) - ids(vg, vd - h, vs_, vb)) / (2.0 * h);
                    let gs = (ids(vg, vd, vs_ + h, vb) - ids(vg, vd, vs_ - h, vb)) / (2.0 * h);
                    let gb = (ids(vg, vd, vs_, vb + h) - ids(vg, vd, vs_, vb - h)) / (2.0 * h);
                    stamp_gm(mat, *d, *s, *g, gg);
                    stamp_gm(mat, *d, *s, *d, gd);
                    stamp_gm(mat, *d, *s, *s, gs);
                    stamp_gm(mat, *d, *s, *b, gb);
                    // Small-signal capacitances at the OP.
                    let (ev, _) = eval_mosfet(pm, *w, *l, vg, vd, vs_, vb);
                    stamp_c(mat, *g, *s, ev.cgs);
                    stamp_c(mat, *g, *d, ev.cgd);
                    stamp_c(mat, *g, *b, ev.cgb);
                    let cj = pm.cj * w * 0.5e-6;
                    stamp_c(mat, *d, *b, cj);
                    stamp_c(mat, *s, *b, cj);
                    // Same gmin floor as the large-signal assembly.
                    stamp_g(mat, *d, *b, 1e-12);
                    stamp_g(mat, *s, *b, 1e-12);
                    stamp_g(mat, *d, *s, 1e-12);
                }
            }
        }
        for node in 1..layout.n_nodes() {
            mat.add_re(node - 1, node - 1, 1e-12);
        }
    }
    Ok(())
}

/// [`ac_analysis_at`] with an explicit solver backend. The dense path is
/// unchanged vs history (fresh [`CMatrix`] + full factorization per
/// frequency); the sparse path assembles one locked triplet structure,
/// runs the symbolic analysis at the first frequency and numerically
/// refactors on the pinned pattern for every later one (a stale pivot
/// falls back to a fresh analysis); the Krylov path runs complex
/// GMRES + ILU(0) with one preconditioner per sweep and a counted
/// direct-LU fallback per stalled frequency.
///
/// # Errors
///
/// [`SpiceError::Singular`] if the complex MNA matrix cannot be factored.
pub fn ac_analysis_at_with(
    circuit: &Circuit,
    op: &DcSolution,
    freqs: &[f64],
    solver: SolverKind,
) -> Result<AcSweep, SpiceError> {
    let layout = MnaLayout::new(circuit);
    let n = layout.size();
    let mut solutions = Vec::with_capacity(freqs.len());
    let mut counters = PerfCounters::new();

    if solver.picks_krylov(n, estimate_nnz(circuit, &layout)) {
        // Krylov tier: one ILU(0) preconditioner per sweep — built at the
        // first frequency and reused (stale) across the remaining points,
        // since the pattern is pinned and only the jωC terms move. A
        // frequency where the stale preconditioner stalls GMRES gets one
        // fresh rebuild, then the counted direct-LU fallback.
        let mut mat: SparseMatrix<Complex64> = SparseMatrix::new(n);
        let mut pattern: Option<IluPattern> = None;
        let mut precond: Option<Ilu0<Complex64>> = None;
        let mut precond_vals: Vec<Complex64> = Vec::new();
        let mut factors: Option<(SymbolicLu, NumericLu<Complex64>)> = None;
        for &f in freqs {
            let omega = 2.0 * std::f64::consts::PI * f;
            let mut rhs = vec![Complex64::new(0.0, 0.0); n];
            mat.begin_assembly();
            assemble_ac(circuit, &layout, op, omega, &mut mat, &mut rhs)?;
            if mat.finish_assembly() {
                pattern = None;
                precond = None;
                precond_vals.clear();
                factors = None;
            }
            let pat = pattern.get_or_insert_with(|| IluPattern::analyze(&mat));
            if precond.is_none() {
                counters.preconditioner_builds += 1;
                precond = Some(Ilu0::factor(pat, &mat));
                precond_vals.clear();
                precond_vals.extend_from_slice(mat.values());
            }
            let gopts = crate::dcop::KRYLOV_NEWTON_GMRES;
            let mut x = vec![Complex64::new(0.0, 0.0); n];
            let mut out = gmres_solve(
                &mat,
                pat,
                precond.as_ref().expect("preconditioner built above"),
                &rhs,
                &mut x,
                &gopts,
            );
            counters.krylov_iterations += out.iterations;
            counters.krylov_restarts += out.restarts;
            if !out.converged && mat.values() != &precond_vals[..] {
                counters.preconditioner_builds += 1;
                precond = Some(Ilu0::factor(pat, &mat));
                precond_vals.clear();
                precond_vals.extend_from_slice(mat.values());
                x.fill(Complex64::new(0.0, 0.0));
                out = gmres_solve(
                    &mat,
                    pat,
                    precond.as_ref().expect("preconditioner rebuilt above"),
                    &rhs,
                    &mut x,
                    &gopts,
                );
                counters.krylov_iterations += out.iterations;
                counters.krylov_restarts += out.restarts;
            }
            if out.converged {
                solutions.push(x);
            } else {
                counters.krylov_fallbacks += 1;
                let mut refactored = false;
                if let Some((sym, num)) = factors.as_mut() {
                    match sym.refactor(&mat, num) {
                        RefactorOutcome::Refactored => {
                            counters.numeric_refactors += 1;
                            counters.lu_factorizations += 1;
                            refactored = true;
                        }
                        RefactorOutcome::Stale => {
                            counters.pattern_fallbacks += 1;
                        }
                    }
                }
                if !refactored {
                    counters.symbolic_analyses += 1;
                    counters.lu_factorizations += 1;
                    factors =
                        Some(SymbolicLu::analyze(&mat).map_err(|e| SpiceError::Singular {
                            analysis: "ac",
                            order: e.order,
                            pivot: e.pivot,
                        })?);
                }
                let (sym, num) = factors.as_ref().expect("factors built above");
                sym.solve(num, &mut rhs);
                solutions.push(rhs);
            }
        }
    } else if solver.picks_sparse(n, estimate_nnz(circuit, &layout)) {
        let mut mat: SparseMatrix<Complex64> = SparseMatrix::new(n);
        let mut factors: Option<(SymbolicLu, NumericLu<Complex64>)> = None;
        for &f in freqs {
            let omega = 2.0 * std::f64::consts::PI * f;
            let mut rhs = vec![Complex64::new(0.0, 0.0); n];
            mat.begin_assembly();
            assemble_ac(circuit, &layout, op, omega, &mut mat, &mut rhs)?;
            if mat.finish_assembly() {
                factors = None;
            }
            let need_analyze = match factors.as_mut() {
                Some((sym, num)) => match sym.refactor(&mat, num) {
                    RefactorOutcome::Refactored => {
                        counters.numeric_refactors += 1;
                        counters.lu_factorizations += 1;
                        false
                    }
                    RefactorOutcome::Stale => {
                        counters.pattern_fallbacks += 1;
                        true
                    }
                },
                None => true,
            };
            if need_analyze {
                counters.symbolic_analyses += 1;
                counters.lu_factorizations += 1;
                factors = Some(SymbolicLu::analyze(&mat).map_err(|e| SpiceError::Singular {
                    analysis: "ac",
                    order: e.order,
                    pivot: e.pivot,
                })?);
            }
            if let Some((sym, num)) = factors.as_ref() {
                sym.solve(num, &mut rhs);
            }
            solutions.push(rhs);
        }
    } else {
        for &f in freqs {
            let omega = 2.0 * std::f64::consts::PI * f;
            let mut mat = CMatrix::zeros(n);
            let mut rhs = vec![Complex64::new(0.0, 0.0); n];
            assemble_ac(circuit, &layout, op, omega, &mut mat, &mut rhs)?;
            counters.lu_factorizations += 1;
            let mut sol = rhs;
            mat.solve_in_place(&mut sol)
                .map_err(|e| SpiceError::Singular {
                    analysis: "ac",
                    order: e.order,
                    pivot: e.pivot,
                })?;
            solutions.push(sol);
        }
    }
    Ok(AcSweep {
        freqs: freqs.to_vec(),
        solutions,
        layout,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SourceWave;
    use crate::mosfet::MosParams;

    #[test]
    fn log_sweep_spans_inclusive() {
        let f = log_sweep(1e3, 1e6, 10);
        assert_eq!(f.len(), 31);
        assert!((f[0] - 1e3).abs() < 1e-9);
        assert!((f.last().unwrap() - 1e6).abs() < 1e-3);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn rc_lowpass_corner_is_minus_3db() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource_ac("V1", a, Circuit::gnd(), SourceWave::Dc(0.0), 1.0);
        c.resistor("R1", a, b, 1e3);
        c.capacitor("C1", b, Circuit::gnd(), 1e-9);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let sweep = ac_analysis(&c, &[], &[fc / 100.0, fc, fc * 100.0]).unwrap();
        let g = sweep.gain_db(b, Circuit::gnd());
        assert!(g[0].abs() < 0.01, "passband flat: {}", g[0]);
        assert!((g[1] + 3.0103).abs() < 0.01, "corner −3 dB: {}", g[1]);
        assert!((g[2] + 40.0).abs() < 0.2, "−20 dB/dec: {}", g[2]);
        let ph = sweep.phase_deg(b, Circuit::gnd());
        assert!((ph[1] + 45.0).abs() < 0.5);
    }

    #[test]
    fn common_source_amp_gain_and_pole() {
        // NMOS CS stage: gain = gm·(RL ∥ ro); pole from CL at the output.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vi = c.node("in");
        let vo = c.node("out");
        c.add_model("nch", MosParams::nmos_018());
        c.vsource("VDD", vdd, Circuit::gnd(), SourceWave::Dc(1.8));
        c.vsource_ac("VIN", vi, Circuit::gnd(), SourceWave::Dc(0.6), 1.0);
        c.resistor("RL", vdd, vo, 20e3);
        c.capacitor("CL", vo, Circuit::gnd(), 1e-12);
        c.mosfet(
            "M1",
            vo,
            vi,
            Circuit::gnd(),
            Circuit::gnd(),
            "nch",
            10e-6,
            1e-6,
        )
        .unwrap();
        let sweep = ac_analysis(&c, &[], &log_sweep(1e3, 10e9, 5)).unwrap();
        let g = sweep.gain_db(vo, Circuit::gnd());
        // Low-frequency gain must exceed 10 dB for this sizing.
        assert!(g[0] > 10.0, "LF gain {}", g[0]);
        // Gain must roll off at high frequency.
        assert!(*g.last().unwrap() < g[0] - 20.0, "rolled off");
    }

    #[test]
    fn sparse_ac_matches_dense_and_shares_the_symbolic_analysis() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vi = c.node("in");
        let vo = c.node("out");
        c.add_model("nch", MosParams::nmos_018());
        c.vsource("VDD", vdd, Circuit::gnd(), SourceWave::Dc(1.8));
        c.vsource_ac("VIN", vi, Circuit::gnd(), SourceWave::Dc(0.6), 1.0);
        c.resistor("RL", vdd, vo, 20e3);
        c.capacitor("CL", vo, Circuit::gnd(), 1e-12);
        c.mosfet(
            "M1",
            vo,
            vi,
            Circuit::gnd(),
            Circuit::gnd(),
            "nch",
            10e-6,
            1e-6,
        )
        .unwrap();
        let freqs = log_sweep(1e3, 1e9, 3);
        let op = dcop_with(&c, &[]).unwrap();
        let dense = ac_analysis_at_with(&c, &op, &freqs, SolverKind::Dense).unwrap();
        let sparse = ac_analysis_at_with(&c, &op, &freqs, SolverKind::Sparse).unwrap();
        for (i, _) in freqs.iter().enumerate() {
            let (a, b) = (dense.voltage(i, vo), sparse.voltage(i, vo));
            assert!(
                (a - b).norm() <= 1e-9 * b.norm().max(1.0),
                "freq {i}: dense {a:?} vs sparse {b:?}"
            );
        }
        // Dense: one full factorization per frequency, no sparse work.
        assert_eq!(dense.counters().lu_factorizations, freqs.len() as u64);
        assert_eq!(dense.counters().symbolic_analyses, 0);
        // Sparse: every frequency is either the shared symbolic analysis
        // (at least the first) or a pinned-pattern numeric refactor.
        let sc = sparse.counters();
        assert!(sc.symbolic_analyses >= 1, "{sc}");
        assert!(sc.numeric_refactors >= 1, "{sc}");
        assert_eq!(
            sc.symbolic_analyses + sc.numeric_refactors,
            freqs.len() as u64,
            "{sc}"
        );

        // Krylov: complex GMRES + ILU(0), same answers, at most a few
        // preconditioner builds across the whole sweep (one in the common
        // case; stalls may refresh it), stalls demoted to counted
        // fallbacks rather than errors.
        let krylov = ac_analysis_at_with(&c, &op, &freqs, SolverKind::Krylov).unwrap();
        for (i, _) in freqs.iter().enumerate() {
            let (a, b) = (dense.voltage(i, vo), krylov.voltage(i, vo));
            assert!(
                (a - b).norm() <= 1e-9 * b.norm().max(1.0),
                "freq {i}: dense {a:?} vs krylov {b:?}"
            );
        }
        let kc = krylov.counters();
        assert!(kc.preconditioner_builds >= 1, "{kc}");
        assert!(kc.krylov_iterations >= 1, "{kc}");
        assert!(
            kc.preconditioner_builds as usize <= freqs.len(),
            "at most one build (plus one refresh per stall) per frequency: {kc}"
        );
    }

    #[test]
    fn crossing_interpolates_the_corner() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource_ac("V1", a, Circuit::gnd(), SourceWave::Dc(0.0), 1.0);
        c.resistor("R1", a, b, 1e3);
        c.capacitor("C1", b, Circuit::gnd(), 1e-9);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e-6);
        let sweep = ac_analysis(&c, &[], &log_sweep(1e3, 1e8, 10)).unwrap();
        let f3 = sweep.crossing(b, Circuit::gnd(), -3.0103).expect("crosses");
        assert!((f3 / fc).ln().abs() < 0.03, "f3 {f3:.3e} vs {fc:.3e}");
        assert!(sweep.crossing(b, Circuit::gnd(), 10.0).is_none());
        let pts = sweep.bode_points(b, Circuit::gnd());
        assert_eq!(pts.len(), sweep.freqs().len());
    }

    #[test]
    fn vccs_integrator_response() {
        // gm into a capacitor: |H| = gm/(ωC) → −20 dB/dec through 0 dB at
        // f = gm/(2πC).
        let mut c = Circuit::new();
        let vi = c.node("in");
        let vo = c.node("out");
        c.vsource_ac("VIN", vi, Circuit::gnd(), SourceWave::Dc(0.0), 1.0);
        // Current INTO the output node when vin > 0: p=gnd? Convention:
        // I(p→n) = gm·v(ctrl); choose p=out so positive vin pulls current
        // out of the node — sign only flips phase, magnitude unaffected.
        c.vccs("G1", vo, Circuit::gnd(), vi, Circuit::gnd(), 62e-6);
        c.capacitor("C1", vo, Circuit::gnd(), 1e-12);
        // Large but finite output resistance.
        c.resistor("RO", vo, Circuit::gnd(), 180e3);
        let f_unity = 62e-6 / (2.0 * std::f64::consts::PI * 1e-12);
        let sweep = ac_analysis(&c, &[], &[f_unity]).unwrap();
        let g = sweep.gain_db(vo, Circuit::gnd());
        assert!(g[0].abs() < 0.1, "unity at gm/2piC: {} dB", g[0]);
    }
}
