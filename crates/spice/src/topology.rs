//! Static topology iteration over a [`Circuit`].
//!
//! The analyses in this crate consume circuits through MNA stamps; the
//! static-analysis layer (`crates/lint`) instead needs to *walk* the
//! topology: which terminals an element has, which pairs of nodes it
//! couples at DC, which branches pin a voltage (and can therefore form a
//! provably singular source loop), which inject pure currents. This module
//! exposes those views without leaking stamping internals.

use crate::circuit::{Circuit, Element, NodeId};

/// The role a node plays on one element terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TerminalRole {
    /// Positive terminal of a two-terminal element or source output.
    Positive,
    /// Negative terminal of a two-terminal element or source output.
    Negative,
    /// Positive controlling (sense) terminal — carries no current.
    ControlPositive,
    /// Negative controlling (sense) terminal — carries no current.
    ControlNegative,
    /// MOSFET drain.
    Drain,
    /// MOSFET gate — DC-insulated.
    Gate,
    /// MOSFET source.
    Source,
    /// MOSFET bulk.
    Bulk,
}

impl TerminalRole {
    /// True for sense terminals that draw no current (VCVS/VCCS controls,
    /// the MOS gate): they attach the element to a node *informationally*
    /// but provide neither a DC path nor a KCL contribution there.
    pub fn is_high_impedance(self) -> bool {
        matches!(
            self,
            TerminalRole::ControlPositive | TerminalRole::ControlNegative | TerminalRole::Gate
        )
    }
}

/// How an element couples its terminals for static classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DcCoupling {
    /// Finite DC conductance between its current-carrying terminals
    /// (R, switch, diode, MOS channel).
    Conductive,
    /// Pins the voltage across its branch (V source, VCVS output, inductor
    /// at DC) — a loop of these is a singular MNA topology.
    VoltageBranch,
    /// Injects a current regardless of its own branch voltage (I source,
    /// VCCS output) — a cutset of these over-determines KCL.
    CurrentSource,
    /// Open at DC (capacitor).
    Open,
}

impl Element {
    /// Every node this element touches, with the role it plays there.
    pub fn terminals(&self) -> Vec<(NodeId, TerminalRole)> {
        use TerminalRole::*;
        match self {
            Element::Resistor { p, n, .. }
            | Element::Capacitor { p, n, .. }
            | Element::Inductor { p, n, .. }
            | Element::Diode { p, n, .. }
            | Element::Vsource { p, n, .. }
            | Element::Isource { p, n, .. }
            | Element::Cccs { p, n, .. }
            | Element::Ccvs { p, n, .. } => vec![(*p, Positive), (*n, Negative)],
            Element::Vcvs { p, n, cp, cn, .. } | Element::Vccs { p, n, cp, cn, .. } => vec![
                (*p, Positive),
                (*n, Negative),
                (*cp, ControlPositive),
                (*cn, ControlNegative),
            ],
            Element::Switch { p, n, cp, cn, .. } => vec![
                (*p, Positive),
                (*n, Negative),
                (*cp, ControlPositive),
                (*cn, ControlNegative),
            ],
            Element::Mosfet { d, g, s, b, .. } => {
                vec![(*d, Drain), (*g, Gate), (*s, Source), (*b, Bulk)]
            }
        }
    }

    /// Static DC classification of this element's main branch.
    pub fn dc_coupling(&self) -> DcCoupling {
        match self {
            Element::Resistor { .. }
            | Element::Switch { .. }
            | Element::Diode { .. }
            | Element::Mosfet { .. } => DcCoupling::Conductive,
            Element::Vsource { .. }
            | Element::Vcvs { .. }
            | Element::Ccvs { .. }
            | Element::Inductor { .. } => DcCoupling::VoltageBranch,
            Element::Isource { .. } | Element::Vccs { .. } | Element::Cccs { .. } => {
                DcCoupling::CurrentSource
            }
            Element::Capacitor { .. } => DcCoupling::Open,
        }
    }

    /// Node pairs between which this element provides a DC current path
    /// (conductive or voltage-pinned — anything that gives the MNA matrix
    /// off-diagonal structure at DC).
    ///
    /// The MOS channel couples drain/source/bulk; the **gate is absent** —
    /// a gate-only node genuinely floats at DC.
    pub fn dc_path_edges(&self) -> Vec<(NodeId, NodeId)> {
        match self {
            Element::Resistor { p, n, .. }
            | Element::Inductor { p, n, .. }
            | Element::Diode { p, n, .. }
            | Element::Vsource { p, n, .. }
            | Element::Switch { p, n, .. } => vec![(*p, *n)],
            Element::Vcvs { p, n, .. } | Element::Ccvs { p, n, .. } => vec![(*p, *n)],
            Element::Mosfet { d, s, b, .. } => vec![(*d, *s), (*d, *b), (*s, *b)],
            Element::Isource { .. }
            | Element::Vccs { .. }
            | Element::Cccs { .. }
            | Element::Capacitor { .. } => Vec::new(),
        }
    }

    /// The `(p, n)` branch when this element pins a voltage at DC.
    pub fn voltage_branch(&self) -> Option<(NodeId, NodeId)> {
        match self {
            Element::Vsource { p, n, .. }
            | Element::Vcvs { p, n, .. }
            | Element::Ccvs { p, n, .. }
            | Element::Inductor { p, n, .. } => Some((*p, *n)),
            _ => None,
        }
    }
}

impl Circuit {
    /// Adds a raw [`Element`] without the constructor-level parameter
    /// validation — the escape hatch for programmatically generated or
    /// deserialized netlists whose values are validated *afterwards* by
    /// the static analyzer (`crates/lint`) instead of by panicking
    /// assertions.
    pub fn push_element_unchecked(&mut self, name: &str, e: Element) {
        self.push(name, e);
    }

    /// Per-node incidence: for every node, the `(element index, role)`
    /// pairs of the terminals attached to it. Index 0 is ground.
    pub fn incidence(&self) -> Vec<Vec<(usize, TerminalRole)>> {
        let mut inc: Vec<Vec<(usize, TerminalRole)>> = vec![Vec::new(); self.num_nodes()];
        for (i, (_, e)) in self.elements().iter().enumerate() {
            for (node, role) in e.terminals() {
                inc[node.index()].push((i, role));
            }
        }
        inc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SourceWave;

    #[test]
    fn terminal_roles_cover_every_element() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(1.0));
        c.resistor("R1", a, b, 1e3);
        c.add_model("nch", crate::mosfet::MosParams::nmos_018());
        c.mosfet(
            "M1",
            b,
            a,
            Circuit::gnd(),
            Circuit::gnd(),
            "nch",
            1e-6,
            1e-6,
        )
        .unwrap();
        let (_, m) = &c.elements()[2];
        let roles: Vec<TerminalRole> = m.terminals().iter().map(|&(_, r)| r).collect();
        assert!(roles.contains(&TerminalRole::Gate));
        assert!(TerminalRole::Gate.is_high_impedance());
        assert!(!TerminalRole::Drain.is_high_impedance());
    }

    #[test]
    fn dc_classification() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor("C1", a, Circuit::gnd(), 1e-12);
        c.isource("I1", a, Circuit::gnd(), SourceWave::Dc(1e-3));
        c.inductor("L1", a, Circuit::gnd(), 1e-9);
        let kinds: Vec<DcCoupling> = c.elements().iter().map(|(_, e)| e.dc_coupling()).collect();
        assert_eq!(
            kinds,
            vec![
                DcCoupling::Open,
                DcCoupling::CurrentSource,
                DcCoupling::VoltageBranch
            ]
        );
        assert!(c.elements()[0].1.dc_path_edges().is_empty());
        assert_eq!(
            c.elements()[2].1.voltage_branch(),
            Some((a, Circuit::gnd()))
        );
    }

    #[test]
    fn mos_gate_has_no_dc_path_edge() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.add_model("nch", crate::mosfet::MosParams::nmos_018());
        c.mosfet(
            "M1",
            d,
            g,
            Circuit::gnd(),
            Circuit::gnd(),
            "nch",
            1e-6,
            1e-6,
        )
        .unwrap();
        let edges = c.elements()[0].1.dc_path_edges();
        assert!(edges.iter().all(|&(x, y)| x != g && y != g), "{edges:?}");
    }

    #[test]
    fn incidence_counts_terminals() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(1.0));
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        let inc = c.incidence();
        assert_eq!(inc[a.index()].len(), 2);
        assert_eq!(inc[0].len(), 2, "ground sees both elements");
    }

    #[test]
    fn unchecked_push_accepts_nonphysical_values() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.push_element_unchecked(
            "Rbad",
            Element::Resistor {
                p: a,
                n: Circuit::gnd(),
                r: -5.0,
            },
        );
        assert_eq!(c.elements().len(), 1);
    }
}
