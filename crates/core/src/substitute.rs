//! Substitute-and-play: swapping one block's implementation behind an
//! electrically compatible interface.
//!
//! ADMS lets the designer replace a single block of the VHDL-AMS system
//! with a transistor-level netlist "provided that input/output terminals
//! are electrically compatible". [`BlockSlot`] encodes that rule: an
//! implementation can only be installed if its [`BlockInterface`] matches
//! the slot's, port for port.

use std::fmt;

/// Electrical nature of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// Continuous-valued input terminal.
    AnalogIn,
    /// Continuous-valued output terminal.
    AnalogOut,
    /// Logic-level input.
    DigitalIn,
    /// Logic-level output.
    DigitalOut,
    /// Power/ground rail.
    Supply,
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PortKind::AnalogIn => "analog in",
            PortKind::AnalogOut => "analog out",
            PortKind::DigitalIn => "digital in",
            PortKind::DigitalOut => "digital out",
            PortKind::Supply => "supply",
        };
        f.write_str(s)
    }
}

/// One named, typed port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortSpec {
    /// Port name (case-insensitive for compatibility checks).
    pub name: String,
    /// Electrical kind.
    pub kind: PortKind,
}

impl PortSpec {
    /// Creates a port spec.
    pub fn new(name: &str, kind: PortKind) -> Self {
        PortSpec {
            name: name.to_ascii_lowercase(),
            kind,
        }
    }
}

/// A block's terminal list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInterface {
    /// Block type name (e.g. `"integrate_dump"`).
    pub name: String,
    /// Ordered port list.
    pub ports: Vec<PortSpec>,
}

impl BlockInterface {
    /// Builds an interface.
    pub fn new(name: &str, ports: Vec<PortSpec>) -> Self {
        BlockInterface {
            name: name.to_string(),
            ports,
        }
    }

    /// Checks electrical compatibility: same port names and kinds
    /// (order-insensitive, names case-insensitive).
    pub fn compatible_with(&self, other: &BlockInterface) -> Result<(), SubstituteError> {
        if self.ports.len() != other.ports.len() {
            return Err(SubstituteError::PortCountMismatch {
                expected: self.ports.len(),
                found: other.ports.len(),
            });
        }
        for p in &self.ports {
            match other.ports.iter().find(|q| q.name == p.name) {
                None => {
                    return Err(SubstituteError::MissingPort {
                        port: p.name.clone(),
                    })
                }
                Some(q) if q.kind != p.kind => {
                    return Err(SubstituteError::KindMismatch {
                        port: p.name.clone(),
                        expected: p.kind,
                        found: q.kind,
                    })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

/// The canonical I&D interface of the paper's Figure 3.
pub fn integrate_dump_interface() -> BlockInterface {
    BlockInterface::new(
        "integrate_dump",
        vec![
            PortSpec::new("inp", PortKind::AnalogIn),
            PortSpec::new("inm", PortKind::AnalogIn),
            PortSpec::new("controlp", PortKind::DigitalIn),
            PortSpec::new("controlm", PortKind::DigitalIn),
            PortSpec::new("vdd", PortKind::Supply),
            PortSpec::new("gnd", PortKind::Supply),
            PortSpec::new("out_intp", PortKind::AnalogOut),
            PortSpec::new("out_intm", PortKind::AnalogOut),
        ],
    )
}

/// Rejection reasons for a substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstituteError {
    /// Different number of terminals.
    PortCountMismatch {
        /// Ports on the slot.
        expected: usize,
        /// Ports on the candidate.
        found: usize,
    },
    /// A named terminal is absent.
    MissingPort {
        /// The missing port name.
        port: String,
    },
    /// A terminal exists but with the wrong electrical kind.
    KindMismatch {
        /// Port name.
        port: String,
        /// Kind on the slot.
        expected: PortKind,
        /// Kind on the candidate.
        found: PortKind,
    },
}

impl fmt::Display for SubstituteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstituteError::PortCountMismatch { expected, found } => {
                write!(
                    f,
                    "port count mismatch: slot has {expected}, candidate {found}"
                )
            }
            SubstituteError::MissingPort { port } => {
                write!(f, "candidate lacks port '{port}'")
            }
            SubstituteError::KindMismatch {
                port,
                expected,
                found,
            } => write!(f, "port '{port}' is {found}, slot requires {expected}"),
        }
    }
}

impl std::error::Error for SubstituteError {}

/// A slot holding one implementation of a block, enforcing interface
/// compatibility on every swap.
///
/// # Examples
///
/// ```
/// use uwb_ams_core::substitute::{integrate_dump_interface, BlockSlot};
/// use uwb_txrx::integrator::{BehavioralIntegrator, IdealIntegrator, IntegratorBlock};
///
/// let iface = integrate_dump_interface();
/// let initial: Box<dyn IntegratorBlock> = Box::new(IdealIntegrator::default());
/// let mut slot = BlockSlot::new(iface.clone(), initial, iface.clone())
///     .expect("ideal fits");
///
/// // Swap in the Phase IV model; the displaced Phase II block comes back.
/// let phase4: Box<dyn IntegratorBlock> = Box::new(BehavioralIntegrator::default());
/// let displaced = slot.substitute(phase4, iface).expect("compatible");
/// drop(displaced);
/// ```
#[derive(Debug)]
pub struct BlockSlot<T> {
    interface: BlockInterface,
    current: T,
}

impl<T> BlockSlot<T> {
    /// Creates the slot with an initial implementation.
    ///
    /// # Errors
    ///
    /// Rejects an implementation whose interface is incompatible.
    pub fn new(
        slot_interface: BlockInterface,
        initial: T,
        initial_interface: BlockInterface,
    ) -> Result<Self, SubstituteError> {
        slot_interface.compatible_with(&initial_interface)?;
        Ok(BlockSlot {
            interface: slot_interface,
            current: initial,
        })
    }

    /// The slot's interface.
    pub fn interface(&self) -> &BlockInterface {
        &self.interface
    }

    /// Borrows the installed implementation.
    pub fn get(&self) -> &T {
        &self.current
    }

    /// Mutably borrows the installed implementation.
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.current
    }

    /// Consumes the slot, returning the implementation.
    pub fn into_inner(self) -> T {
        self.current
    }

    /// Swaps in a new implementation, returning the displaced one.
    ///
    /// # Errors
    ///
    /// Rejects candidates whose interface is incompatible — the candidate
    /// is *not* installed and is returned inside the error-free path only.
    pub fn substitute(
        &mut self,
        candidate: T,
        candidate_interface: BlockInterface,
    ) -> Result<T, SubstituteError> {
        self.interface.compatible_with(&candidate_interface)?;
        Ok(std::mem::replace(&mut self.current, candidate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface(ports: &[(&str, PortKind)]) -> BlockInterface {
        BlockInterface::new(
            "blk",
            ports.iter().map(|(n, k)| PortSpec::new(n, *k)).collect(),
        )
    }

    #[test]
    fn identical_interfaces_are_compatible() {
        let a = integrate_dump_interface();
        let b = integrate_dump_interface();
        assert!(a.compatible_with(&b).is_ok());
    }

    #[test]
    fn case_and_order_insensitive() {
        let a = iface(&[("inp", PortKind::AnalogIn), ("out", PortKind::AnalogOut)]);
        let b = BlockInterface::new(
            "blk",
            vec![
                PortSpec::new("OUT", PortKind::AnalogOut),
                PortSpec::new("InP", PortKind::AnalogIn),
            ],
        );
        assert!(a.compatible_with(&b).is_ok());
    }

    #[test]
    fn missing_port_rejected() {
        let a = iface(&[("inp", PortKind::AnalogIn), ("out", PortKind::AnalogOut)]);
        let b = iface(&[("inp", PortKind::AnalogIn), ("outx", PortKind::AnalogOut)]);
        let err = a.compatible_with(&b).unwrap_err();
        assert_eq!(err, SubstituteError::MissingPort { port: "out".into() });
        assert!(err.to_string().contains("out"));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let a = iface(&[("ctl", PortKind::DigitalIn)]);
        let b = iface(&[("ctl", PortKind::AnalogIn)]);
        assert!(matches!(
            a.compatible_with(&b),
            Err(SubstituteError::KindMismatch { .. })
        ));
    }

    #[test]
    fn port_count_mismatch_rejected() {
        let a = iface(&[("x", PortKind::AnalogIn)]);
        let b = iface(&[("x", PortKind::AnalogIn), ("y", PortKind::AnalogIn)]);
        assert!(matches!(
            a.compatible_with(&b),
            Err(SubstituteError::PortCountMismatch {
                expected: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn slot_swaps_and_returns_displaced() {
        let i = iface(&[("x", PortKind::AnalogIn)]);
        let mut slot = BlockSlot::new(i.clone(), 1u32, i.clone()).unwrap();
        let old = slot.substitute(2u32, i.clone()).unwrap();
        assert_eq!(old, 1);
        assert_eq!(*slot.get(), 2);
        // Incompatible candidate: slot unchanged.
        let bad = iface(&[("y", PortKind::AnalogIn)]);
        assert!(slot.substitute(3u32, bad).is_err());
        assert_eq!(slot.into_inner(), 2);
    }
}
