//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! behind the workspace `rand` shim's traits.
//!
//! The core is the genuine ChaCha permutation (8 rounds) over a 32-byte
//! key, so the statistical quality matches the upstream crate; the word
//! serialisation is this crate's own fixed convention, so streams are
//! reproducible against *this* implementation (fixed seed → fixed stream),
//! not bit-compatible with upstream `rand_chacha`.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill before use".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k" sigma constants.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // One double round: columns, then diagonals.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(initial)) {
            *out = s.wrapping_add(i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(0xBE5);
        let mut b = ChaCha8Rng::seed_from_u64(0xBE5);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.5)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn chacha_permutation_changes_every_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
