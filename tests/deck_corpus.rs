//! Golden deck corpus regression: every committed deck under
//! `tests/decks/` runs the full front-end pipeline (lex → AST →
//! hierarchical elaboration), passes the ERC gate, and produces matching
//! results on the dense and sparse solver backends.
//!
//! The Integrate & Dump decks are *generated* from the Rust builder via
//! [`spice::netlist::subckt_deck`]; `committed_id_decks_are_current`
//! pins the committed text to the builder and the `#[ignore]`d
//! `regen_id_decks` test rewrites the files after an intentional change:
//!
//! ```sh
//! cargo test --test deck_corpus regen_id_decks -- --ignored
//! ```

use spice::circuit::{Circuit, SourceWave};
use spice::deck::{run_deck_with_tran, DeckRun};
use spice::library::{integrate_dump, IntegrateDumpParams};
use spice::netlist::subckt_deck;
use spice::tran::{AdaptiveOptions, TranOptions, TransientSimulator};
use spice::{NewtonOptions, SolverKind};
use uwb_ams_core::{run_deck_checked_with, ErcConfig};

/// Every committed golden deck, by name.
fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("rc_ladder", include_str!("decks/rc_ladder.cir")),
        ("diode_ladder", include_str!("decks/diode_ladder.cir")),
        ("mosfet_amp", include_str!("decks/mosfet_amp.cir")),
        (
            "controlled_sources",
            include_str!("decks/controlled_sources.cir"),
        ),
        ("id_cell", include_str!("decks/id_cell.cir")),
        ("id_array", include_str!("decks/id_array.cir")),
        ("pulse_train", include_str!("decks/pulse_train.cir")),
        ("pwl_ramp", include_str!("decks/pwl_ramp.cir")),
    ]
}

const ID_PORTS: [&str; 7] = [
    "vdd", "inp", "inm", "controlp", "controlm", "out_intp", "out_intm",
];

/// The I&D cell rendered as a `.subckt` block from the Rust builder.
fn id_cell_subckt() -> String {
    let mut ckt = Circuit::new();
    integrate_dump(&mut ckt, "", &IntegrateDumpParams::default())
        .expect("builtin I&D parameters are well-formed");
    subckt_deck(&ckt, "id_cell", &ID_PORTS).expect("all ports exist")
}

/// One I&D cell in integrate mode, stepped for 20 transient points.
fn id_cell_deck() -> String {
    format!(
        "* Golden deck: the paper's Integrate & Dump cell as a .SUBCKT.\n\
         * Generated from spice::library::integrate_dump via subckt_deck;\n\
         * regenerate with: cargo test --test deck_corpus regen_id_decks -- --ignored\n\
         {}\
         VDD vdd 0 DC 1.8\n\
         VINP inp 0 DC 1.10\n\
         VINM inm 0 DC 1.00\n\
         VCP controlp 0 DC 1.8\n\
         VCM controlm 0 DC 0\n\
         X1 vdd inp inm controlp controlm out_intp out_intm id_cell\n\
         .tran 5n 100n\n\
         .print v(out_intp) v(out_intm)\n\
         .end\n",
        id_cell_subckt()
    )
}

/// Three I&D tiles sharing supply, inputs and control rails — the
/// "N X cards" array shape from the tiled receiver.
fn id_array_deck() -> String {
    let mut s = format!(
        "* Golden deck: three Integrate & Dump tiles as X cards on one rail.\n\
         * Generated from spice::library::integrate_dump via subckt_deck;\n\
         * regenerate with: cargo test --test deck_corpus regen_id_decks -- --ignored\n\
         {}\
         VDD vdd 0 DC 1.8\n\
         VINP inp 0 DC 1.10\n\
         VINM inm 0 DC 1.00\n\
         VCP controlp 0 DC 1.8\n\
         VCM controlm 0 DC 0\n",
        id_cell_subckt()
    );
    for i in 1..=3 {
        s.push_str(&format!(
            "X{i} vdd inp inm controlp controlm o{i}p o{i}m id_cell\n"
        ));
    }
    s.push_str(".op\n.print v(o1p) v(o2p) v(o3p)\n.end\n");
    s
}

#[test]
fn committed_id_decks_are_current() {
    assert_eq!(
        include_str!("decks/id_cell.cir"),
        id_cell_deck(),
        "tests/decks/id_cell.cir is stale; rerun the regen_id_decks test"
    );
    assert_eq!(
        include_str!("decks/id_array.cir"),
        id_array_deck(),
        "tests/decks/id_array.cir is stale; rerun the regen_id_decks test"
    );
}

/// Rewrites the generated decks. Run after changing the I&D builder:
/// `cargo test --test deck_corpus regen_id_decks -- --ignored`.
#[test]
#[ignore = "regenerates committed corpus files"]
fn regen_id_decks() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/decks");
    std::fs::write(format!("{dir}/id_cell.cir"), id_cell_deck()).unwrap();
    std::fs::write(format!("{dir}/id_array.cir"), id_array_deck()).unwrap();
}

fn assert_runs_agree(name: &str, dense: &DeckRun, sparse: &DeckRun) {
    let tol = 1e-6;
    for (id, node) in dense.circuit.nodes() {
        if id == spice::NodeId::GROUND {
            continue;
        }
        let (vd, vs) = (dense.op.voltage(id), sparse.op.voltage(id));
        assert!(
            (vd - vs).abs() < tol,
            "{name}: op v({node}) dense {vd} vs sparse {vs}"
        );
    }
    match (&dense.dc, &sparse.dc) {
        (Some(d), Some(s)) => {
            assert_eq!(d.values, s.values, "{name}: sweep grids differ");
            for (node, dcol) in d.nodes.iter().zip(&d.voltages) {
                let scol = s.trace(node).expect("same print set");
                for (a, b) in dcol.iter().zip(scol) {
                    assert!((a - b).abs() < tol, "{name}: dc v({node}) {a} vs {b}");
                }
            }
        }
        (None, None) => {}
        _ => panic!("{name}: backends disagree on whether .dc ran"),
    }
    assert_eq!(dense.tran.len(), sparse.tran.len(), "{name}: trace sets");
    for dt in &dense.tran {
        let st = sparse.trace(&dt.node).expect("same print set");
        for (a, b) in dt.values.iter().zip(&st.values) {
            assert!(
                (a - b).abs() < 1e-5,
                "{name}: tran v({}) {a} vs {b}",
                dt.node
            );
        }
    }
    match (&dense.ac, &sparse.ac) {
        (Some(d), Some(s)) => {
            for (id, _) in dense.circuit.nodes() {
                if id == spice::NodeId::GROUND {
                    continue;
                }
                let gd = d.gain_db(id, Circuit::gnd());
                let gs = s.gain_db(id, Circuit::gnd());
                for (a, b) in gd.iter().zip(&gs) {
                    assert!((a - b).abs() < 1e-6, "{name}: ac gain {a} vs {b}");
                }
            }
        }
        (None, None) => {}
        _ => panic!("{name}: backends disagree on whether .ac ran"),
    }
}

/// The tentpole acceptance loop: parse → elaborate → ERC gate → simulate
/// on both backends, asserting agreement, for every committed deck.
#[test]
fn corpus_gates_and_agrees_across_backends() {
    for (name, deck) in corpus() {
        let dense = run_deck_checked_with(deck, &ErcConfig::default(), name, SolverKind::Dense)
            .unwrap_or_else(|e| panic!("{name} (dense): {e}"));
        let sparse = run_deck_checked_with(deck, &ErcConfig::default(), name, SolverKind::Sparse)
            .unwrap_or_else(|e| panic!("{name} (sparse): {e}"));
        assert!(
            !dense.report.has_errors(),
            "{name}: {}",
            dense.report.render()
        );
        assert_runs_agree(name, &dense.run, &sparse.run);
    }
}

/// The deck-path I&D transient must match the Rust-API golden trace: the
/// same cell built by the library, the same stimulus, the same step grid.
/// Pinned to adaptive-off so the comparison against the hand-stepped API
/// run stays valid whatever `UWB_AMS_ADAPTIVE` the harness exports.
#[test]
fn id_cell_deck_matches_api_golden() {
    let deck = id_cell_deck();
    for solver in [SolverKind::Dense, SolverKind::Sparse] {
        let run = run_deck_with_tran(&deck, solver, AdaptiveOptions::off()).expect("deck runs");

        // API golden: identical topology, instance-style node names.
        let mut ckt = Circuit::new();
        let ports = integrate_dump(&mut ckt, "x1.", &IntegrateDumpParams::default()).unwrap();
        let gnd = Circuit::gnd();
        ckt.vsource("VDD", ports.vdd, gnd, SourceWave::Dc(1.8));
        ckt.vsource("VINP", ports.inp, gnd, SourceWave::Dc(1.10));
        ckt.vsource("VINM", ports.inm, gnd, SourceWave::Dc(1.00));
        ckt.vsource("VCP", ports.controlp, gnd, SourceWave::Dc(1.8));
        ckt.vsource("VCM", ports.controlm, gnd, SourceWave::Dc(0.0));
        let opts = TranOptions {
            newton: NewtonOptions {
                solver,
                ..TranOptions::default().newton
            },
            ..TranOptions::default()
        };
        let mut sim = TransientSimulator::new(ckt, opts).expect("golden op converges");
        let mut golden = vec![sim.voltage(ports.out_intp)];
        for _ in 0..20 {
            sim.step(5e-9).expect("golden step");
            golden.push(sim.voltage(ports.out_intp));
        }

        let trace = run.trace("out_intp").expect("printed node");
        assert_eq!(trace.values.len(), golden.len(), "same step grid");
        for (i, (d, g)) in trace.values.iter().zip(&golden).enumerate() {
            assert!(
                (d - g).abs() < 1e-5,
                "{solver:?} step {i}: deck {d} vs api {g}"
            );
        }
    }
}

/// `UWB_AMS_ADAPTIVE=off` parity: off-mode is the legacy fixed-step path
/// whatever the environment says — two runs are bit-identical and carry
/// zero adaptive bookkeeping.
#[test]
fn adaptive_off_parity_is_bit_exact_and_unbooked() {
    for (name, deck) in corpus() {
        let runs: Vec<DeckRun> = (0..2)
            .map(|_| {
                run_deck_with_tran(deck, SolverKind::Dense, AdaptiveOptions::off())
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
            })
            .collect();
        let (a, b) = (&runs[0], &runs[1]);
        assert_eq!(a.tran.len(), b.tran.len(), "{name}");
        for (ta, tb) in a.tran.iter().zip(&b.tran) {
            assert_eq!(ta.times, tb.times, "{name}: off-mode grids");
            assert_eq!(
                ta.values, tb.values,
                "{name}: off-mode must be deterministic, bit for bit"
            );
        }
        if let Some(c) = a.tran_counters {
            assert_eq!(
                c.lte_evaluations, 0,
                "{name}: fixed path estimates no LTE: {c}"
            );
            assert_eq!(
                c.steps_rejected, 0,
                "{name}: fixed path rejects nothing: {c}"
            );
        }
    }
}

/// Adaptive mode runs the whole corpus: resampled traces stay close to
/// the fixed grid, the rejection counter stays bounded (no livelock),
/// and on decks with long quiet stretches the controller spends fewer
/// accepted steps than the fixed grid.
#[test]
fn adaptive_corpus_tracks_fixed_with_bounded_rejections() {
    for (name, deck) in corpus() {
        let fixed = run_deck_with_tran(deck, SolverKind::Dense, AdaptiveOptions::off())
            .unwrap_or_else(|e| panic!("{name} fixed: {e}"));
        let adapt = run_deck_with_tran(deck, SolverKind::Dense, AdaptiveOptions::on())
            .unwrap_or_else(|e| panic!("{name} adaptive: {e}"));
        assert_eq!(fixed.tran.len(), adapt.tran.len(), "{name}");
        for ft in &fixed.tran {
            let at = adapt.trace(&ft.node).expect("same print set");
            assert_eq!(ft.times, at.times, "{name}: print grid is the contract");
            // Sanity band only: on coarse grids the *fixed* run's own
            // discretisation error dominates the gap (the equal-accuracy
            // claim is pinned against a fine reference by the
            // adaptive-vs-fixed bench and `tests/adaptive_breakpoints.rs`).
            for (i, (f, a)) in ft.values.iter().zip(&at.values).enumerate() {
                assert!(
                    (f - a).abs() < 5e-2,
                    "{name} v({}) sample {i}: fixed {f} vs adaptive {a}",
                    ft.node
                );
            }
        }
        let (Some(cf), Some(ca)) = (fixed.tran_counters, adapt.tran_counters) else {
            continue; // deck has no .tran card
        };
        assert!(
            ca.steps_rejected <= 4 * ca.steps_accepted() + 64,
            "{name}: rejection livelock: {ca}"
        );
        // The long-horizon decks are where adaptive pays for itself.
        if matches!(name, "rc_ladder" | "pulse_train" | "id_cell") {
            assert!(
                ca.steps_accepted() < cf.steps_accepted(),
                "{name}: adaptive {ca} vs fixed {cf}"
            );
        }
    }
}
