//! Table 2: Two-Way Ranging at 9.9 m over the CM1 LOS channel.
//!
//! Runs N ranging iterations (the paper uses 10) with the selected
//! integrator fidelities inside both receivers and prints the
//! mean / standard deviation / offset table.
//!
//! ```sh
//! cargo run --release --example two_way_ranging [iterations] [fidelities...]
//! # the paper's full experiment:
//! cargo run --release --example two_way_ranging 10 ideal circuit
//! ```

use uwb_ams_core::metrics::{twr_table, twr_table_row};
use uwb_txrx::integrator::{build_integrator, Fidelity};
use uwb_txrx::transceiver::TwrConfig;

fn parse_fidelity(s: &str) -> Option<Fidelity> {
    match s.to_ascii_lowercase().as_str() {
        "ideal" => Some(Fidelity::Ideal),
        "model" | "behavioral" => Some(Fidelity::Behavioral),
        "circuit" | "eldo" | "spice" => Some(Fidelity::Circuit),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iterations: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(10);
    let fidelities: Vec<Fidelity> = {
        let parsed: Vec<Fidelity> = args.iter().filter_map(|a| parse_fidelity(a)).collect();
        if parsed.is_empty() {
            vec![Fidelity::Ideal]
        } else {
            parsed
        }
    };

    let cfg = TwrConfig::default();
    println!(
        "TWR @ {} m over {:?}, {} iterations, processing time {} us\n",
        cfg.distance,
        cfg.model,
        iterations,
        cfg.processing_time * 1e6
    );

    let mut rows = Vec::new();
    for f in fidelities {
        println!("ranging with the {f} integrator ...");
        let (row, iters) = twr_table_row(
            &cfg,
            iterations,
            &f.to_string(),
            || build_integrator(f).expect("integrator builds"),
            0x79A + f as u64,
        )?;
        for (i, it) in iters.iter().enumerate() {
            println!("  iter {:>2}: {:.2} m", i + 1, it.distance_est);
        }
        rows.push(row);
    }

    println!("\n{}", twr_table(&rows, cfg.distance));
    println!(
        "(paper @ 9.9 m: IDEAL mean 10.10 m / spread 0.49 m; ELDO mean 11.16 m /\n\
         spread 0.10 m — the circuit ranks with larger offset, smaller spread)"
    );
    Ok(())
}
