//! Restarted GMRES(m) over the CSC [`SparseMatrix`], left-preconditioned
//! by [`Ilu0`].
//!
//! This is the iterative rung of the solver ladder
//! ([`SolverKind::Krylov`](crate::SolverKind::Krylov) /
//! `UWB_AMS_SOLVER=krylov`): Arnoldi with modified Gram–Schmidt builds an
//! orthonormal Krylov basis of the preconditioned operator `M⁻¹A`, Givens
//! rotations keep the small Hessenberg least-squares problem triangular so
//! the residual norm is available every iteration for free, and an
//! unconverged inner sweep restarts from the current iterate with a fresh
//! basis (bounded memory — the whole point of GMRES(m)). Everything is
//! generic over [`KrylovScalar`], so the complex AC sweep runs the exact
//! same code path as the real DC/transient solves.
//!
//! GMRES never panics on a hard system: it reports
//! [`converged: false`](GmresOutcome::converged) and the caller demotes to
//! the direct sparse LU, counting the event in
//! `PerfCounters::krylov_fallbacks`. The operator itself is always the
//! exact current matrix — only the *preconditioner* may be stale — so a
//! converged result is correct regardless of preconditioner quality.

use crate::ilu::{Ilu0, IluPattern};
use crate::sparse::{SparseMatrix, SparseScalar};
use num_complex::Complex64;

/// Extra scalar operations GMRES needs on top of [`SparseScalar`]:
/// conjugation for the complex inner product, real scaling, embedding of
/// real scalars, and the *true* modulus (where [`SparseScalar::mag`] is
/// the squared norm for complex pivoting purposes).
pub trait KrylovScalar: SparseScalar {
    /// Complex conjugate (identity for `f64`).
    fn conj(self) -> Self;
    /// Embeds a real scalar.
    fn from_f64(x: f64) -> Self;
    /// True modulus `|x|` (not the pivot convention of `mag`).
    fn modulus(self) -> f64;
    /// Scales by a real factor.
    fn scale(self, s: f64) -> Self;
}

impl KrylovScalar for f64 {
    #[inline]
    fn conj(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(x: f64) -> f64 {
        x
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn scale(self, s: f64) -> f64 {
        self * s
    }
}

impl KrylovScalar for Complex64 {
    #[inline]
    fn conj(self) -> Complex64 {
        Complex64::new(self.re, -self.im)
    }
    #[inline]
    fn from_f64(x: f64) -> Complex64 {
        Complex64::new(x, 0.0)
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.norm()
    }
    #[inline]
    fn scale(self, s: f64) -> Complex64 {
        Complex64::new(self.re * s, self.im * s)
    }
}

/// Tuning knobs for one [`gmres_solve`] call.
#[derive(Debug, Clone, Copy)]
pub struct GmresOptions {
    /// Krylov subspace dimension per restart cycle (`m`).
    pub restart: usize,
    /// Maximum restart cycles before giving up (total iteration budget is
    /// `restart * max_restarts`, clamped to the matrix order per cycle).
    pub max_restarts: usize,
    /// Relative residual tolerance `‖b − Ax‖ / ‖b‖`, verified on the
    /// *true* (unpreconditioned) residual at cycle boundaries — the
    /// preconditioned estimate the inner sweep tracks can flatter a
    /// stiff system by orders of magnitude. Kept tight (well below the
    /// parity gates) so a converged Krylov solve is interchangeable
    /// with a direct one downstream.
    pub tol: f64,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            restart: 30,
            max_restarts: 50,
            tol: 1e-12,
        }
    }
}

/// What one [`gmres_solve`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOutcome {
    /// Whether the relative-residual tolerance was met.
    pub converged: bool,
    /// Arnoldi iterations performed (matrix–vector products).
    pub iterations: u64,
    /// Restart cycles entered *after* the first sweep.
    pub restarts: u64,
    /// Final true relative residual `‖b − Ax‖ / ‖b‖` (the inner sweep's
    /// preconditioned estimate when the budget ran out mid-sweep).
    pub residual: f64,
}

/// Solves `A x = b` by restarted, left-preconditioned GMRES(m), starting
/// from `x`'s current contents (pass zeros for a cold start; a Newton
/// correction step naturally starts at zero). On `converged: false` the
/// best iterate found so far is left in `x`, but callers are expected to
/// discard it and fall back to the direct solver.
pub fn gmres_solve<T: KrylovScalar>(
    a: &SparseMatrix<T>,
    pattern: &IluPattern,
    precond: &Ilu0<T>,
    b: &[T],
    x: &mut [T],
    opts: &GmresOptions,
) -> GmresOutcome {
    let n = a.order();
    debug_assert_eq!(b.len(), n);
    debug_assert_eq!(x.len(), n);
    let m = opts.restart.clamp(1, n.max(1));

    // Reference scales: the true ‖b‖ gates convergence; ‖M⁻¹b‖ scales
    // the inner sweep's free residual estimate.
    let b_norm_true = norm(b);
    let mut pb = b.to_vec();
    precond.apply(pattern, &mut pb);
    let b_norm = norm(&pb);
    if !b_norm.is_finite() || !b_norm_true.is_finite() {
        return GmresOutcome {
            converged: false,
            iterations: 0,
            restarts: 0,
            residual: f64::INFINITY,
        };
    }
    if b_norm_true == 0.0 {
        x.fill(T::ZERO);
        return GmresOutcome {
            converged: true,
            iterations: 0,
            restarts: 0,
            residual: 0.0,
        };
    }

    let mut iterations: u64 = 0;
    let mut restarts: u64 = 0;
    let mut last_rel = f64::INFINITY;

    // `max_restarts + 1` passes: the extra one only verifies the final
    // sweep's true residual, it never starts another Arnoldi cycle.
    for cycle in 0..=opts.max_restarts {
        // True residual r = b − A x decides convergence: the rotated-g
        // estimate the sweep tracks lives in the M⁻¹ norm, and on a
        // stiff system that can sit orders below ‖b − Ax‖/‖b‖.
        let ax = a.mul_vec(x);
        let r_true: Vec<T> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
        let true_rel = norm(&r_true) / b_norm_true;
        last_rel = true_rel;
        if !true_rel.is_finite() {
            return GmresOutcome {
                converged: false,
                iterations,
                restarts,
                residual: true_rel,
            };
        }
        if true_rel <= opts.tol {
            return GmresOutcome {
                converged: x.iter().all(|v| v.finite()),
                iterations,
                restarts,
                residual: true_rel,
            };
        }
        if cycle == opts.max_restarts {
            break;
        }
        // r = M⁻¹ (b − A x) seeds the next sweep.
        let mut r = r_true;
        precond.apply(pattern, &mut r);
        let beta = norm(&r);
        if !beta.is_finite() || beta == 0.0 {
            return GmresOutcome {
                converged: false,
                iterations,
                restarts,
                residual: true_rel,
            };
        }
        // Every cycle before this one ran a full Arnoldi sweep (any that
        // didn't returned or broke out), so `cycle > 0` means this sweep
        // is a restart.
        if cycle > 0 {
            restarts += 1;
        }

        // Arnoldi basis, Hessenberg columns, Givens rotations, rhs g.
        let mut basis: Vec<Vec<T>> = Vec::with_capacity(m + 1);
        basis.push(scaled(&r, 1.0 / beta));
        let mut h_cols: Vec<Vec<T>> = Vec::with_capacity(m);
        let mut cs: Vec<T> = Vec::with_capacity(m);
        let mut sn: Vec<T> = Vec::with_capacity(m);
        let mut g: Vec<T> = vec![T::ZERO; m + 1];
        g[0] = T::from_f64(beta);
        let mut k_used = 0;

        for k in 0..m {
            iterations += 1;
            // w = M⁻¹ A v_k
            let mut w = a.mul_vec(&basis[k]);
            precond.apply(pattern, &mut w);
            let mut h = vec![T::ZERO; k + 2];
            // Modified Gram–Schmidt.
            for (j, v) in basis.iter().enumerate() {
                let hjk = dot(v, &w);
                h[j] = hjk;
                for (wi, &vi) in w.iter_mut().zip(v) {
                    *wi -= hjk * vi;
                }
            }
            let wn = norm(&w);
            if !wn.is_finite() {
                return GmresOutcome {
                    converged: false,
                    iterations,
                    restarts,
                    residual: last_rel,
                };
            }
            h[k + 1] = T::from_f64(wn);

            // Apply the accumulated rotations to the new column.
            for j in 0..k {
                let (c, s) = (cs[j], sn[j]);
                let t0 = c.conj() * h[j] + s.conj() * h[j + 1];
                let t1 = c * h[j + 1] - s * h[j];
                h[j] = t0;
                h[j + 1] = t1;
            }
            // New rotation annihilating h[k+1].
            let (c, s) = givens(h[k], h[k + 1]);
            cs.push(c);
            sn.push(s);
            h[k] = c.conj() * h[k] + s.conj() * h[k + 1];
            h[k + 1] = T::ZERO;
            let gk = g[k];
            g[k] = c.conj() * gk;
            g[k + 1] = (s * gk).scale(-1.0);
            h_cols.push(h);
            k_used = k + 1;

            let rel = g[k + 1].modulus() / b_norm;
            let happy = wn <= f64::EPSILON * beta;
            if rel <= opts.tol || happy || k + 1 == m {
                // Sweep done: the estimate met the tolerance, the
                // subspace went invariant, or the basis is full. Either
                // way apply the update and let the outer pass verify
                // the true residual.
                break;
            }
            basis.push(scaled(&w, 1.0 / wn));
        }
        // Apply this sweep's correction; the loop top recomputes the
        // true residual and decides convergence.
        update_solution(x, &basis, &h_cols, &g, k_used);
    }

    GmresOutcome {
        converged: false,
        iterations,
        restarts,
        residual: last_rel,
    }
}

/// `x += V_k y` where `R y = g` (back-substitution on the rotated
/// Hessenberg columns).
fn update_solution<T: KrylovScalar>(
    x: &mut [T],
    basis: &[Vec<T>],
    h_cols: &[Vec<T>],
    g: &[T],
    k: usize,
) {
    if k == 0 {
        return;
    }
    let mut y = vec![T::ZERO; k];
    for i in (0..k).rev() {
        let mut acc = g[i];
        for (j, yj) in y.iter().enumerate().take(k).skip(i + 1) {
            acc -= h_cols[j][i] * *yj;
        }
        y[i] = acc / h_cols[i][i];
    }
    for (j, yj) in y.iter().enumerate() {
        for (xi, &vi) in x.iter_mut().zip(&basis[j]) {
            *xi += *yj * vi;
        }
    }
}

/// Unitary Givens pair `(c, s)` with `conj(c)·a + conj(s)·b` real
/// non-negative and `-s·a + c·b = 0`.
fn givens<T: KrylovScalar>(a: T, b: T) -> (T, T) {
    let r = (a.modulus().powi(2) + b.modulus().powi(2)).sqrt();
    if r == 0.0 || !r.is_finite() {
        (T::from_f64(1.0), T::ZERO)
    } else {
        (a.scale(1.0 / r), b.scale(1.0 / r))
    }
}

fn dot<T: KrylovScalar>(u: &[T], v: &[T]) -> T {
    let mut acc = T::ZERO;
    for (&ui, &vi) in u.iter().zip(v) {
        acc += ui.conj() * vi;
    }
    acc
}

fn norm<T: KrylovScalar>(v: &[T]) -> f64 {
    let mut acc = 0.0;
    for x in v {
        let m = x.modulus();
        acc += m * m;
    }
    acc.sqrt()
}

fn scaled<T: KrylovScalar>(v: &[T], s: f64) -> Vec<T> {
    v.iter().map(|x| x.scale(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn random_dominant(n: usize, seed: u64) -> SparseMatrix<f64> {
        let mut rng = Lcg(seed);
        let mut m = SparseMatrix::new(n);
        m.begin_assembly();
        for i in 0..n {
            m.add(i, i, 4.0 + rng.next());
            let j = (i + 1) % n;
            m.add(i, j, rng.next() - 0.5);
            let k = (i + 7) % n;
            if k != i && k != j {
                m.add(i, k, rng.next() - 0.5);
            }
        }
        m.finish_assembly();
        m
    }

    #[test]
    fn converges_on_dominant_real_system() {
        let n = 60;
        let a = random_dominant(n, 42);
        let pattern = IluPattern::analyze(&a);
        let ilu = Ilu0::factor(&pattern, &a);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.mul_vec(&x_true);
        let mut x = vec![0.0; n];
        let out = gmres_solve(&a, &pattern, &ilu, &b, &mut x, &GmresOptions::default());
        assert!(out.converged, "residual {}", out.residual);
        assert!(out.iterations > 0);
        let b_scale: f64 = x_true.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (got, want) in x.iter().zip(&x_true) {
            assert!(
                (got - want).abs() <= 1e-9 * b_scale,
                "{got} vs {want} (residual {})",
                out.residual
            );
        }
    }

    #[test]
    fn converges_on_complex_system() {
        use num_complex::Complex64;
        let n = 24;
        let mut rng = Lcg(7);
        let mut a: SparseMatrix<Complex64> = SparseMatrix::new(n);
        a.begin_assembly();
        for i in 0..n {
            a.add(i, i, Complex64::new(5.0 + rng.next(), 1.0 + rng.next()));
            let j = (i + 1) % n;
            a.add(i, j, Complex64::new(rng.next() - 0.5, rng.next() - 0.5));
        }
        a.finish_assembly();
        let pattern = IluPattern::analyze(&a);
        let ilu = Ilu0::factor(&pattern, &a);
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let b = a.mul_vec(&x_true);
        let mut x = vec![Complex64::new(0.0, 0.0); n];
        let out = gmres_solve(&a, &pattern, &ilu, &b, &mut x, &GmresOptions::default());
        assert!(out.converged, "residual {}", out.residual);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((*got - *want).norm() <= 1e-9, "residual {}", out.residual);
        }
    }

    #[test]
    fn forced_restart_still_converges() {
        let n = 50;
        let a = random_dominant(n, 9);
        let pattern = IluPattern::analyze(&a);
        // Unpreconditioned: ILU(0) is near-exact on this pattern and
        // would converge inside a single tiny sweep.
        let ilu = Ilu0::identity();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let b = a.mul_vec(&x_true);
        let mut x = vec![0.0; n];
        let opts = GmresOptions {
            restart: 3,
            max_restarts: 200,
            ..GmresOptions::default()
        };
        let out = gmres_solve(&a, &pattern, &ilu, &b, &mut x, &opts);
        assert!(out.converged, "residual {}", out.residual);
        assert!(out.restarts > 0, "tiny m must force restarts");
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() <= 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = random_dominant(8, 3);
        let pattern = IluPattern::analyze(&a);
        let ilu = Ilu0::factor(&pattern, &a);
        let b = vec![0.0; 8];
        let mut x = vec![1.0; 8];
        let out = gmres_solve(&a, &pattern, &ilu, &b, &mut x, &GmresOptions::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn exhausted_budget_reports_unconverged() {
        let n = 40;
        let a = random_dominant(n, 17);
        let pattern = IluPattern::analyze(&a);
        let ilu = Ilu0::factor(&pattern, &a);
        let b = a.mul_vec(&vec![1.0; n]);
        let mut x = vec![0.0; n];
        let opts = GmresOptions {
            restart: 1,
            max_restarts: 1,
            tol: 1e-15,
        };
        let out = gmres_solve(&a, &pattern, &ilu, &b, &mut x, &opts);
        assert!(!out.converged, "one iteration cannot hit 1e-15");
        assert!(out.residual.is_finite());
    }
}
