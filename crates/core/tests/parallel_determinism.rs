//! Regression: campaign results must be bit-identical at any thread count.
//!
//! The parallel executor derives every sweep point's RNG stream from
//! `(campaign seed, point index)` alone, so fanning a campaign over a
//! worker pool must not change a single bit of its output. This is the
//! contract that lets Fig 6 / Table 2 numbers be compared across machines.

use uwb_ams_core::executor::stream_seed;
use uwb_ams_core::metrics::{twr_table_row, BerCampaign, TwrDistanceSweep};
use uwb_txrx::integrator::IdealIntegrator;
use uwb_txrx::transceiver::TwrConfig;

fn campaign() -> BerCampaign {
    BerCampaign {
        ebn0_db: vec![2.0, 6.0, 10.0, 14.0],
        bits_per_point: 100,
        block_bits: 25,
        seed: 0xBE5,
        ..Default::default()
    }
}

#[test]
fn ber_campaign_identical_across_thread_counts() {
    let c = campaign();
    let baseline = c
        .run_with_threads("serial", 1, || Ok(Box::new(IdealIntegrator::default())))
        .expect("serial run");
    assert_eq!(baseline.points.len(), 4);
    for threads in [2, 8] {
        let par = c
            .run_with_threads("serial", threads, || {
                Ok(Box::new(IdealIntegrator::default()))
            })
            .expect("parallel run");
        // BerPoint is PartialEq over raw counters — bit-identical or bust.
        assert_eq!(baseline, par, "{threads} threads diverged from serial");
    }
}

#[test]
fn ber_campaign_points_vary_by_stream_not_schedule() {
    // Sanity on the stream derivation itself: two different seeds give
    // different curves (the points really do consume their own streams).
    let a = campaign()
        .run_with_threads("a", 2, || Ok(Box::new(IdealIntegrator::default())))
        .unwrap();
    let b = BerCampaign {
        seed: 0x5EED,
        ..campaign()
    }
    .run_with_threads("a", 2, || Ok(Box::new(IdealIntegrator::default())))
    .unwrap();
    assert_ne!(a, b, "different seeds must give different noise");
    assert_ne!(stream_seed(0xBE5, 0), stream_seed(0x5EED, 0));
}

#[test]
fn twr_row_and_sweep_agree_and_are_thread_independent() {
    let cfg = TwrConfig::default();
    let make = || Box::new(IdealIntegrator::default()) as Box<_>;
    let (row, iters) = twr_table_row(&cfg, 4, "ideal", make, 0xD157).expect("row");
    assert_eq!(iters.len() + row.failures, 4);

    // The flattened sweep must reproduce the standalone row exactly:
    // distance index 0 uses the same per-iteration seed streams.
    let sweep = TwrDistanceSweep {
        base: cfg.clone(),
        distances: vec![TwrConfig::default().distance],
        iterations: 4,
        seed: 0xD157,
    };
    let rows = sweep.run("ideal", make).expect("sweep");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1.mean, row.mean, "sweep must match standalone row");
    assert_eq!(rows[0].1.std_dev, row.std_dev);

    // And repeat runs are bit-stable (worker pool does not leak state).
    let (row2, _) = twr_table_row(&cfg, 4, "ideal", make, 0xD157).expect("row2");
    assert_eq!(row.mean, row2.mean);
    assert_eq!(row.std_dev, row2.std_dev);
}
