//! Regression: the pre-simulation ERC gate must reject a singular
//! topology *before* the transient solver runs, so no
//! `SpiceError::Singular` ever reaches the caller through the flow.

use spice::circuit::{Circuit, SourceWave};
use spice::library::integrate_dump_testbench;
use spice::tran::TranOptions;
use uwb_ams_core::erc::{checked_transient, ErcConfig, FlowError};
use uwb_ams_core::flow::Phase;
use uwb_ams_core::{check_phase, phase_report};

/// The paper's Phase III testbench with the classic injected mistake: a
/// second supply in parallel with VDD at a different voltage — a
/// voltage-source loop, structurally singular at DC.
fn doctored_bench() -> (Circuit, Vec<f64>) {
    let bench = integrate_dump_testbench(&Default::default()).expect("builtin bench");
    let mut circuit = bench.circuit;
    let externals = vec![0.0; circuit.num_externals];
    circuit.vsource("VDD2", bench.ports.vdd, Circuit::gnd(), SourceWave::Dc(1.5));
    (circuit, externals)
}

#[test]
fn injected_voltage_loop_is_denied_before_the_solver_runs() {
    let (circuit, externals) = doctored_bench();
    let err = checked_transient(
        circuit,
        TranOptions::default(),
        externals,
        &ErcConfig::default(),
        "doctored I&D bench",
    )
    .expect_err("the gate must deny the doctored bench");

    // The denial is a structured ERC report naming the offending element —
    // not a numeric failure from three layers down.
    match err {
        FlowError::Erc { phase, report } => {
            assert_eq!(phase, Phase::III);
            assert!(
                report.has(lint::LintCode::VoltageSourceLoop),
                "{}",
                report.render()
            );
            assert!(
                report.render().contains("vdd2"),
                "the closing branch is named: {}",
                report.render()
            );
        }
        other => panic!("solver error leaked past the gate: {other}"),
    }
}

#[test]
fn without_the_gate_the_same_deck_fails_inside_the_solver() {
    // The counterfactual that justifies the gate's existence: bypassing it
    // hands the singular topology straight to the DC solve, which fails
    // with an opaque numeric error instead of a diagnostic.
    let (circuit, externals) = doctored_bench();
    let err = checked_transient(
        circuit,
        TranOptions::default(),
        externals,
        &ErcConfig::disabled(),
        "doctored I&D bench",
    )
    .expect_err("a singular topology cannot have an operating point");
    assert!(
        matches!(err, FlowError::Receive(_)),
        "with --no-erc the failure comes from the solver: {err}"
    );
}

#[test]
fn clean_bench_passes_the_gate_and_solves() {
    let bench = integrate_dump_testbench(&Default::default()).expect("builtin bench");
    let externals = vec![0.0; bench.circuit.num_externals];
    let sim = checked_transient(
        bench.circuit,
        TranOptions::default(),
        externals,
        &ErcConfig::default(),
        "I&D bench",
    )
    .expect("the shipped testbench is ERC-clean and solvable");
    assert!(sim.time() >= 0.0);
}

#[test]
fn all_flow_phases_pass_their_static_checks() {
    for phase in Phase::ALL {
        let report = phase_report(phase);
        assert!(!report.has_errors(), "{phase}: {}", report.render());
        check_phase(phase, &ErcConfig::default()).expect("gate passes");
    }
}
