//! Phase I validation: the behavioural energy-detection path must overlap
//! the closed-form reference — the paper's "BER curves which perfectly
//! overlapped the Matlab ones" check, with the closed form playing Matlab.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use uwb_phy::ber::{detector_dof, monte_carlo_ber, ppm2_energy_detection_ber_db};
use uwb_phy::modulation::PpmConfig;

#[test]
fn monte_carlo_overlaps_closed_form_across_the_sweep() {
    let cfg = PpmConfig {
        symbol_period: 8e-9,
        intra_slot_offset: 1e-9,
        ..Default::default()
    };
    let dof = detector_dof(&cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(0xFA);
    for ebn0_db in [8.0, 12.0, 16.0] {
        let est = monte_carlo_ber(&cfg, ebn0_db, 6000, &mut rng);
        let theory = ppm2_energy_detection_ber_db(ebn0_db, dof);
        // Overlap criterion: within a factor-2 envelope plus the Monte-Carlo
        // confidence interval (plot-scale overlap).
        let tol = theory + 3.0 * est.ci95();
        assert!(
            (est.ber() - theory).abs() <= tol,
            "Eb/N0 {ebn0_db} dB: MC {} vs theory {theory}",
            est.ber()
        );
    }
}

#[test]
fn phase1_flow_report_is_error_free_at_high_snr() {
    use uwb_ams_core::flow::{FlowScenario, Phase, TopDownFlow};
    let flow = TopDownFlow::new(FlowScenario::default());
    let report = flow.run_phase(Phase::I).expect("phase I runs");
    assert_eq!(report.metric("bit_errors"), Some(0.0));
}
