//! UWB pulse shapes.
//!
//! Sub-nanosecond baseband pulses sent directly to the wideband antenna
//! (impulse radio, no carrier). Gaussian-derivative families are the
//! standard choices; the second derivative ("doublet") has no DC content
//! and a bandwidth matching the FCC 3.1–10.6 GHz band for τ ≈ 60–100 ps.

use crate::waveform::Waveform;

/// A parameterised UWB pulse shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PulseShape {
    /// First Gaussian derivative (monocycle).
    GaussianMonocycle {
        /// Shape time constant τ, s.
        tau: f64,
    },
    /// Second Gaussian derivative (doublet) — the default for this system.
    GaussianDoublet {
        /// Shape time constant τ, s.
        tau: f64,
    },
    /// Fifth Gaussian derivative, FCC-mask friendly.
    GaussianFifth {
        /// Shape time constant τ, s.
        tau: f64,
    },
}

impl Default for PulseShape {
    fn default() -> Self {
        PulseShape::GaussianDoublet { tau: 80e-12 }
    }
}

impl PulseShape {
    /// Shape time constant τ.
    pub fn tau(&self) -> f64 {
        match *self {
            PulseShape::GaussianMonocycle { tau }
            | PulseShape::GaussianDoublet { tau }
            | PulseShape::GaussianFifth { tau } => tau,
        }
    }

    /// Evaluates the (unnormalised) pulse centred at `t = 0`.
    pub fn eval(&self, t: f64) -> f64 {
        let tau = self.tau();
        let u = t / tau;
        let g = (-0.5 * u * u).exp();
        match self {
            PulseShape::GaussianMonocycle { .. } => -u * g,
            PulseShape::GaussianDoublet { .. } => (u * u - 1.0) * g,
            PulseShape::GaussianFifth { .. } => -(u.powi(5) - 10.0 * u.powi(3) + 15.0 * u) * g,
        }
    }

    /// Practical pulse duration: the support `[-4τ, 4τ]` window, s.
    pub fn duration(&self) -> f64 {
        8.0 * self.tau()
    }

    /// Samples the pulse over its support at rate `fs`, normalised to
    /// **unit energy** (so the modulator sets `Eb` by simple scaling).
    pub fn sampled(&self, fs: f64) -> Waveform {
        let half = self.duration() / 2.0;
        let mut w = Waveform::from_fn(fs, self.duration(), |t| self.eval(t - half));
        let e = w.energy();
        if e > 0.0 {
            w.scale(1.0 / e.sqrt());
        }
        w
    }

    /// Rough −10 dB bandwidth estimate, Hz (peak emission frequency scale
    /// `≈ 1/(2πτ)` times a derivative-order factor).
    pub fn bandwidth(&self) -> f64 {
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * self.tau());
        match self {
            PulseShape::GaussianMonocycle { .. } => 2.0 * f0,
            PulseShape::GaussianDoublet { .. } => 2.5 * f0,
            PulseShape::GaussianFifth { .. } => 3.5 * f0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_pulse_has_unit_energy() {
        for shape in [
            PulseShape::GaussianMonocycle { tau: 80e-12 },
            PulseShape::GaussianDoublet { tau: 80e-12 },
            PulseShape::GaussianFifth { tau: 60e-12 },
        ] {
            let w = shape.sampled(20e9);
            assert!(
                (w.energy() - 1.0).abs() < 1e-12,
                "energy {} for {shape:?}",
                w.energy()
            );
        }
    }

    #[test]
    fn doublet_is_symmetric_and_dc_free() {
        let s = PulseShape::GaussianDoublet { tau: 100e-12 };
        assert!((s.eval(0.3e-9) - s.eval(-0.3e-9)).abs() < 1e-15, "even");
        // Integral ≈ 0 (no DC): sum samples.
        let w = s.sampled(50e9);
        let sum: f64 = w.samples().iter().sum();
        assert!(sum.abs() < 1e-3 * w.peak() * w.len() as f64);
    }

    #[test]
    fn monocycle_is_odd() {
        let s = PulseShape::GaussianMonocycle { tau: 100e-12 };
        assert!((s.eval(0.2e-9) + s.eval(-0.2e-9)).abs() < 1e-15);
        assert_eq!(s.eval(0.0), 0.0);
    }

    #[test]
    fn duration_and_bandwidth_scale_with_tau() {
        let fast = PulseShape::GaussianDoublet { tau: 50e-12 };
        let slow = PulseShape::GaussianDoublet { tau: 200e-12 };
        assert!(fast.duration() < slow.duration());
        assert!(fast.bandwidth() > slow.bandwidth());
        // τ = 80 ps doublet: multi-GHz bandwidth, i.e. genuinely UWB.
        assert!(PulseShape::default().bandwidth() > 3e9);
    }

    #[test]
    fn default_duration_is_subnanosecond() {
        assert!(PulseShape::default().duration() < 1e-9);
    }
}
