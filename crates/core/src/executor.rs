//! Deterministic parallel sweep executor.
//!
//! The paper's campaigns (Fig 6 BER curves, Table 2 TWR statistics, the
//! distance sweep) are embarrassingly parallel across sweep points, but a
//! naive port would thread one RNG through the whole run and make results
//! depend on scheduling. This module fixes the contract instead:
//!
//! * every sweep point gets its **own** RNG stream, derived with
//!   [`stream_seed`] from `(campaign seed, point index)` only, and
//! * [`run_indexed`] returns results **in index order** regardless of
//!   which worker finished first,
//!
//! so a campaign's output is bit-identical at any thread count — the
//! determinism the top-down methodology needs to compare model fidelities
//! across runs (and machines).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-pool size.
pub const THREADS_ENV: &str = "UWB_AMS_THREADS";

/// Worker threads to use for campaigns: the `UWB_AMS_THREADS` environment
/// variable when set to a positive integer, else the machine's available
/// parallelism (1 if that cannot be determined).
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Derives the RNG seed for sweep point `index` of a campaign seeded with
/// `seed`.
///
/// A SplitMix64-style finalizer over the pair: avalanching guarantees that
/// neighbouring indices (and neighbouring campaign seeds) produce
/// uncorrelated ChaCha8 streams. Pure function of its arguments — this is
/// what makes campaign results independent of the thread count.
pub fn stream_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `task(0) .. task(n-1)` on a scoped worker pool of `threads`
/// threads and returns the results **in index order**.
///
/// Work is claimed from a shared atomic counter, so load-balancing is
/// dynamic (sweep points can differ wildly in cost — a circuit-level BER
/// point dwarfs an ideal one), while the output order is fixed. With
/// `threads <= 1` the tasks run inline on the caller's thread.
///
/// `task` must be `Sync` (shared by all workers) but its return value only
/// needs `Send` — values are created and consumed on one worker each.
pub fn run_indexed<T, F>(n: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = task(i);
                collected.lock().unwrap().push((i, value));
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap();
    pairs.sort_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Fallible variant of [`run_indexed`]: all `n` tasks run to completion,
/// then the **lowest-indexed** error (if any) is returned — the same error
/// a serial loop would have hit first, independent of scheduling.
///
/// # Errors
///
/// The error of the lowest-indexed failing task.
pub fn try_run_indexed<T, E, F>(n: usize, threads: usize, task: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    run_indexed(n, threads, task).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        // Make early indices slow so completion order inverts.
        let out = run_indexed(16, 8, |i| {
            std::thread::sleep(std::time::Duration::from_micros((16 - i as u64) * 200));
            i * i
        });
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let f = |i: usize| stream_seed(42, i as u64);
        let serial = run_indexed(33, 1, f);
        for threads in [2, 3, 8, 64] {
            assert_eq!(run_indexed(33, threads, f), serial, "{threads} threads");
        }
    }

    #[test]
    fn lowest_indexed_error_wins() {
        for threads in [1, 4] {
            let r: Result<Vec<usize>, usize> =
                try_run_indexed(20, threads, |i| if i % 7 == 3 { Err(i) } else { Ok(i) });
            assert_eq!(r, Err(3), "{threads} threads");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(none.is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(stream_seed(0xBE5, i)), "collision at {i}");
        }
        // Pinned: these values are part of campaign reproducibility.
        assert_eq!(stream_seed(0, 0), stream_seed(0, 0));
        assert_ne!(stream_seed(0, 0), stream_seed(0, 1));
        assert_ne!(stream_seed(0, 0), stream_seed(1, 0));
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }
}
