//! Quickstart: one 2-PPM packet through the top-down flow.
//!
//! Runs the same reception scenario at every methodology phase — the
//! behavioural single entity (Phase I), the full architecture with ideal
//! blocks (Phase II), the transistor-level I&D in the loop (Phase III) and
//! the calibrated two-pole model (Phase IV) — and prints the comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use uwb_ams_core::flow::{flow_table, FlowScenario, Phase, TopDownFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = FlowScenario::default();
    println!(
        "Scenario: {} payload bits, preamble {} symbols, Eb/N0 = {} dB\n",
        scenario.payload.len(),
        scenario.preamble_len,
        scenario.ebn0_db
    );

    let flow = TopDownFlow::new(scenario);
    let mut reports = Vec::new();
    for phase in Phase::ALL {
        println!("{phase}: {}", phase.description());
        let report = flow.run_phase(phase)?;
        println!(
            "  -> bit errors {:.0}/{:.0}, wall {:?}",
            report.metric("bit_errors").unwrap_or(f64::NAN),
            report.metric("bits").unwrap_or(f64::NAN),
            report.wall
        );
        reports.push(report);
    }

    println!("\n{}", flow_table(&reports));
    println!(
        "Phase III (transistor netlist) and Phase IV (calibrated model) run the\n\
         identical testbench as Phase II — only the I&D slot changed. That is\n\
         the substitute-and-play step of the methodology."
    );
    Ok(())
}
