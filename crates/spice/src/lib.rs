//! # spice — a transistor-level circuit simulator
//!
//! The Rust stand-in for the Eldo/Spice layer of the paper's methodology:
//! modified nodal analysis with
//!
//! * DC operating point ([`dcop()`]) — damped Newton-Raphson with gmin and
//!   source stepping homotopies,
//! * small-signal AC sweeps ([`ac::ac_analysis`]) on the linearised circuit,
//! * Backward-Euler transient ([`tran::TransientSimulator`]) with
//!   per-step Newton and external (co-simulation) source slots,
//! * Level-1 MOSFETs with body effect and Meyer capacitances
//!   ([`mosfet::MosParams`]), resistors, capacitors, controlled sources and
//!   smooth switches,
//! * dense matrices, the partial-pivot LU and the work counters come from
//!   the shared [`sim_core`] kernel (re-exported as [`linalg`] / [`perf`]),
//!   so circuit and behavioural solves run on one numeric substrate,
//! * a staged SPICE-deck front-end — lexer ([`lexer::lex_deck`]), typed
//!   card AST ([`ast::parse_ast`]) and hierarchical `.subckt` elaboration
//!   ([`elaborate::elaborate`]) behind [`netlist::parse_deck`] — with
//!   executable `.op`/`.dc`/`.tran`/`.ac`/`.print`/`.ic` cards
//!   ([`deck::run_deck`]), and
//! * the paper's CMOS Integrate & Dump cell ([`library::integrate_dump`]).
//!
//! ## Example
//!
//! ```
//! use spice::circuit::{Circuit, SourceWave};
//! use spice::dcop::dcop;
//!
//! # fn main() -> Result<(), spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.vsource("V1", vin, Circuit::gnd(), SourceWave::Dc(1.8));
//! ckt.resistor("R1", vin, out, 1e3);
//! ckt.resistor("R2", out, Circuit::gnd(), 2e3);
//! let op = dcop(&ckt)?;
//! assert!((op.voltage(out) - 1.2).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ac;
pub mod ast;
pub mod circuit;
pub mod dcop;
pub mod deck;
pub mod elaborate;
pub mod error;
pub mod lexer;
pub mod library;
pub mod mna;
pub mod mosfet;
pub mod netlist;
pub mod rescue;
pub mod topology;
pub mod tran;

// The numeric substrate (dense matrices, LU with cached-factor reuse) and
// the work counters live in `sim-core`, shared with the behavioural
// kernel; re-exported here so `spice::linalg` / `spice::perf` paths keep
// working.
pub use sim_core::{linalg, perf};

pub use ac::{ac_analysis, ac_analysis_at, ac_analysis_at_with, log_sweep, AcSweep};
pub use circuit::{Circuit, Element, NodeId, SourceWave};
pub use dcop::{
    dcop, dcop_batch, dcop_batch_with, dcop_with, dcop_with_guess, dcop_with_opts, BatchPoint,
    BatchReport, BatchWorkspace, CampaignKernel, DcSolution, NewtonOptions,
};
pub use deck::{
    run_deck, run_deck_with, run_deck_with_tran, DcSweep, DeckAnalyses, DeckRun, TranTrace,
};
pub use error::{ParseDiagnostic, SpiceError};
pub use lexer::parse_value;
pub use mna::{dc_pattern, MnaLayout, MnaUnknown};
pub use mosfet::{MosParams, MosType};
pub use netlist::{parse_deck, subckt_deck, write_deck};
pub use perf::PerfCounters;
pub use rescue::{dcop_rescue, dcop_rescue_injected, RescuePolicy};
pub use sim_core::batched::BatchWidth;
pub use sim_core::faultinject::{waveform_checksum, FaultKind, FaultSchedule, FaultSpec};
pub use sim_core::rescue::{RescueAttempt, RescueReport, RescueRung};
pub use sim_core::sparse::SolverKind;
pub use topology::{DcCoupling, TerminalRole};
pub use tran::{
    collect_breakpoints, AdaptiveOptions, Method as TranMethod, TranOptions, TransientSimulator,
};
