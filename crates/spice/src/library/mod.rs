//! Ready-made circuit cells.
//!
//! The centrepiece is [`integrate_dump`]: the paper's Figure 3 CMOS
//! Integrate & Dump cell (fully differential current-mode Gm-C integrator,
//! 31 transistors, UMC 0.18 µm-class devices). Smaller reference cells used
//! by tests and examples live here too.

mod integrate_dump;

pub use integrate_dump::{
    integrate_dump, integrate_dump_testbench, IntegrateDumpParams, IntegrateDumpPorts,
    IntegrateDumpTestbench,
};

use crate::circuit::{Circuit, NodeId, SourceWave};
use crate::mosfet::MosParams;

/// Builds a CMOS inverter driving a load capacitor; returns
/// `(circuit, in, out)`.
///
/// # Examples
///
/// ```
/// use spice::library::cmos_inverter;
/// use spice::dcop::dcop;
///
/// # fn main() -> Result<(), spice::SpiceError> {
/// let (ckt, _vin, vout) = cmos_inverter(0.0);
/// let op = dcop(&ckt)?;
/// assert!(op.voltage(vout) > 1.7); // input low → output high
/// # Ok(())
/// # }
/// ```
pub fn cmos_inverter(vin: f64) -> (Circuit, NodeId, NodeId) {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vi = c.node("in");
    let vo = c.node("out");
    c.add_model("nch", MosParams::nmos_018());
    c.add_model("pch", MosParams::pmos_018());
    c.vsource("VDD", vdd, Circuit::gnd(), SourceWave::Dc(1.8));
    c.vsource("VIN", vi, Circuit::gnd(), SourceWave::Dc(vin));
    c.mosfet(
        "MN",
        vo,
        vi,
        Circuit::gnd(),
        Circuit::gnd(),
        "nch",
        2e-6,
        0.18e-6,
    )
    .expect("model registered");
    c.mosfet("MP", vo, vi, vdd, vdd, "pch", 6e-6, 0.18e-6)
        .expect("model registered");
    c.capacitor("CL", vo, Circuit::gnd(), 10e-15);
    (c, vi, vo)
}

/// Builds a first-order RC low-pass driven by an AC-capable source;
/// returns `(circuit, in, out)`. Corner frequency = `1/(2πRC)`.
pub fn rc_lowpass(r: f64, c_farads: f64) -> (Circuit, NodeId, NodeId) {
    let mut c = Circuit::new();
    let a = c.node("in");
    let b = c.node("out");
    c.vsource_ac("V1", a, Circuit::gnd(), SourceWave::Dc(0.0), 1.0);
    c.resistor("R1", a, b, r);
    c.capacitor("C1", b, Circuit::gnd(), c_farads);
    (c, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{ac_analysis, log_sweep};
    use crate::dcop::dcop;

    #[test]
    fn inverter_logic_levels() {
        let (low_in, _, out) = cmos_inverter(0.0);
        assert!(dcop(&low_in).unwrap().voltage(out) > 1.7);
        let (high_in, _, out) = cmos_inverter(1.8);
        assert!(dcop(&high_in).unwrap().voltage(out) < 0.1);
    }

    #[test]
    fn rc_lowpass_ac_shape() {
        let (ckt, _, out) = rc_lowpass(1e3, 1e-9);
        let sweep = ac_analysis(&ckt, &[], &log_sweep(1e3, 1e8, 5)).unwrap();
        let g = sweep.gain_db(out, Circuit::gnd());
        assert!(g[0].abs() < 0.1);
        assert!(*g.last().unwrap() < -40.0);
    }
}
