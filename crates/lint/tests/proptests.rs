//! Property test (opt-in, `--features proptests`): any randomly generated
//! linear deck that passes the singular-topology checks (`E0103`
//! voltage-source loops, `E0104` current-source cutsets) *and* has a DC
//! path to ground everywhere (no `W0102`) must never return
//! `SingularMatrixError` at the DC operating point.
//!
//! This is the contract that lets the flow executor treat a clean ERC
//! report as a go/no-go: the only structurally singular DC topologies a
//! linear R/C/L/V/I netlist can express are voltage-branch loops (duplicate
//! MNA branch rows — gmin cannot save those), and the analyzer claims to
//! find all of them statically.
//!
//! `W0102` joins the filter because it marks *numerically* singular cases,
//! not just ill-conditioned ones: a multi-node island coupled internally by
//! large conductances but tied to ground only through capacitors produces a
//! Schur complement of ~2·gmin after the first elimination, and the
//! cancellation `g + gmin → g` in f64 rounds that pivot to exactly zero
//! when g/gmin exceeds 1/ε. A *single* floating node survives (its diagonal
//! is gmin alone), which is why W0102 stays a warning rather than an error.
//!
//! The generator is a deterministic xorshift so failures replay by seed —
//! no external proptest crate (the build environment is offline).
#![cfg(feature = "proptests")]

use lint::{lint_circuit, LintCode};
use spice::circuit::{Circuit, NodeId, SourceWave};
use spice::dcop::dcop;
use spice::SpiceError;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Log-uniform positive value across typical component decades.
    fn value(&mut self) -> f64 {
        let exp = self.below(13) as i32 - 9; // 1e-9 ..= 1e3
        let mant = 1.0 + (self.below(90) as f64) / 10.0; // 1.0 ..= 9.9
        mant * 10f64.powi(exp)
    }
}

fn random_circuit(rng: &mut XorShift) -> Circuit {
    let mut c = Circuit::new();
    let n_nodes = 2 + rng.below(4) as usize; // ground + 1..=4 internal
    let nodes: Vec<NodeId> = (1..n_nodes).map(|i| c.node(&format!("n{i}"))).collect();
    let pick = |rng: &mut XorShift, nodes: &[NodeId]| -> NodeId {
        let k = rng.below(nodes.len() as u64 + 1) as usize;
        if k == nodes.len() {
            Circuit::gnd()
        } else {
            nodes[k]
        }
    };
    let n_elems = 1 + rng.below(8) as usize;
    for i in 0..n_elems {
        let p = pick(rng, &nodes);
        let n = pick(rng, &nodes);
        match rng.below(5) {
            0 => c.resistor(&format!("R{i}"), p, n, rng.value()),
            1 => c.capacitor(&format!("C{i}"), p, n, rng.value()),
            2 => c.inductor(&format!("L{i}"), p, n, rng.value()),
            3 => c.vsource(
                &format!("V{i}"),
                p,
                n,
                SourceWave::Dc((rng.below(37) as f64) / 10.0 - 1.8),
            ),
            _ => c.isource(
                &format!("I{i}"),
                p,
                n,
                SourceWave::Dc((rng.below(21) as f64 - 10.0) * 1e-4),
            ),
        }
    }
    c
}

#[test]
fn decks_passing_singular_topology_checks_never_singular_at_dc() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    let mut passed = 0usize;
    let mut rejected = 0usize;
    for case in 0..2000 {
        let seed = rng.0;
        let ckt = random_circuit(&mut rng);
        let report = lint_circuit(&ckt, "prop");
        if report.has(LintCode::VoltageSourceLoop)
            || report.has(LintCode::CurrentSourceCutset)
            || report.has(LintCode::NoDcPathToGround)
        {
            rejected += 1;
            continue;
        }
        passed += 1;
        match dcop(&ckt) {
            Ok(_) => {}
            Err(SpiceError::Singular { order, pivot, .. }) => panic!(
                "case {case} (seed {seed:#x}): ERC-clean deck hit a singular matrix \
                 (order {order}, pivot {pivot}):\n{}\n{}",
                spice::netlist::write_deck(&ckt),
                report.render()
            ),
            // Non-singular failures (if any) are outside this property.
            Err(_) => {}
        }
    }
    // The generator must exercise both sides of the filter.
    assert!(passed > 200, "only {passed} clean cases generated");
    assert!(
        rejected > 100,
        "only {rejected} singular-topology cases generated"
    );
}

#[test]
fn voltage_loops_found_by_lint_do_fail_dc() {
    // Converse spot-check: the detector is not crying wolf — a deck it
    // rejects for a V-loop with *inconsistent* values really is singular.
    let mut c = Circuit::new();
    let a = c.node("a");
    c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(1.0));
    c.vsource("V2", a, Circuit::gnd(), SourceWave::Dc(2.0));
    c.resistor("R1", a, Circuit::gnd(), 1e3);
    assert!(lint_circuit(&c, "prop").has(LintCode::VoltageSourceLoop));
    // The raw MNA system is singular; dcop's gmin/source-stepping homotopy
    // may surface that as `Singular` or as a NaN-diverging Newton loop
    // (`DcopDiverged`) — either way the solve must fail, which is exactly
    // the failure mode the static E0103 check exists to pre-empt.
    match dcop(&c) {
        Err(SpiceError::Singular { .. }) | Err(SpiceError::DcopDiverged { .. }) => {}
        other => panic!("parallel sources of different value must fail at DC, got {other:?}"),
    }
}
