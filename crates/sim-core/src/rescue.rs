//! The shared vocabulary of the convergence-rescue ladder.
//!
//! When a solver fails mid-run — a transient Newton loop diverging, a DC
//! operating point refusing to converge — the engines do not give up
//! immediately: they climb a *rescue ladder* (cut the timestep; deepen the
//! gmin homotopy; ramp the sources; fall back to a pseudo-transient).
//! Every attempt is recorded here as a [`RescueAttempt`] inside a
//! [`RescueReport`], so the flow driver can tell a *rescued* run (demoted
//! to a warning) from an *exhausted* one (a real failure), and the golden
//! fault-matrix tests can pin the exact transcript of a rescue.
//!
//! The types are engine-agnostic: the circuit simulator (`spice`) and the
//! behavioural kernel (`ams-kernel`) both produce them, and the flow layer
//! (`core`) consumes them without caring which engine struggled.

/// One rung of the rescue ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RescueRung {
    /// Transient: halve the failing timestep and retry the interval.
    TimestepCut,
    /// DC: extend the gmin-stepping homotopy beyond the standard ladder.
    GminStep,
    /// DC: ramp the independent sources in finer increments.
    SourceStep,
    /// DC: integrate a damped pseudo-transient towards the operating point.
    PseudoTransient,
}

impl std::fmt::Display for RescueRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RescueRung::TimestepCut => "timestep-cut",
            RescueRung::GminStep => "gmin-step",
            RescueRung::SourceStep => "source-step",
            RescueRung::PseudoTransient => "pseudo-transient",
        };
        f.write_str(s)
    }
}

/// One recorded rescue attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct RescueAttempt {
    /// Which rung of the ladder was tried.
    pub rung: RescueRung,
    /// Simulation time of the failing step (seconds); 0 for DC rescues.
    pub t: f64,
    /// Human-readable context: the step width being cut, the homotopy
    /// parameter being ramped, the error that triggered the attempt.
    pub detail: String,
    /// Whether this attempt recovered the run.
    pub succeeded: bool,
}

/// The transcript of every rescue attempted during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RescueReport {
    /// Attempts in the order they were made.
    pub attempts: Vec<RescueAttempt>,
}

impl RescueReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a not-yet-successful attempt and returns its index, so the
    /// engine can [`mark_success`](Self::mark_success) it later.
    pub fn record(&mut self, rung: RescueRung, t: f64, detail: impl Into<String>) -> usize {
        self.attempts.push(RescueAttempt {
            rung,
            t,
            detail: detail.into(),
            succeeded: false,
        });
        self.attempts.len() - 1
    }

    /// Marks a previously recorded attempt as the one that recovered.
    pub fn mark_success(&mut self, index: usize) {
        if let Some(a) = self.attempts.get_mut(index) {
            a.succeeded = true;
        }
    }

    /// Total attempts across all rungs.
    pub fn attempts(&self) -> usize {
        self.attempts.len()
    }

    /// Attempts on one specific rung.
    pub fn attempts_on(&self, rung: RescueRung) -> usize {
        self.attempts.iter().filter(|a| a.rung == rung).count()
    }

    /// Attempts that recovered the run.
    pub fn successes(&self) -> usize {
        self.attempts.iter().filter(|a| a.succeeded).count()
    }

    /// `true` when at least one rescue attempt succeeded — i.e. the run
    /// only completed because the ladder stepped in.
    pub fn rescued(&self) -> bool {
        self.successes() > 0
    }

    /// Appends another report's attempts (aggregating engine transcripts).
    pub fn merge(&mut self, other: &RescueReport) {
        self.attempts.extend(other.attempts.iter().cloned());
    }

    /// A stable one-line signature of the transcript, e.g.
    /// `"timestep-cut!;timestep-cut"` (`!` marks the successful attempts).
    /// Deterministic runs produce identical signatures, which is what the
    /// golden fault-matrix tests pin.
    pub fn signature(&self) -> String {
        self.attempts
            .iter()
            .map(|a| {
                if a.succeeded {
                    format!("{}!", a.rung)
                } else {
                    a.rung.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(";")
    }
}

impl std::fmt::Display for RescueReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.attempts.is_empty() {
            return f.write_str("no rescues");
        }
        write!(
            f,
            "{} rescue attempt(s), {} successful: {}",
            self.attempts(),
            self.successes(),
            self.signature()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_attempts_and_successes() {
        let mut r = RescueReport::new();
        assert!(!r.rescued());
        let a = r.record(RescueRung::TimestepCut, 1e-9, "h 1e-10 -> 5e-11");
        let _b = r.record(RescueRung::TimestepCut, 1e-9, "h 5e-11 -> 2.5e-11");
        r.mark_success(a);
        assert_eq!(r.attempts(), 2);
        assert_eq!(r.attempts_on(RescueRung::TimestepCut), 2);
        assert_eq!(r.attempts_on(RescueRung::GminStep), 0);
        assert_eq!(r.successes(), 1);
        assert!(r.rescued());
        assert_eq!(r.signature(), "timestep-cut!;timestep-cut");
        assert!(r.to_string().contains("2 rescue attempt(s)"));
    }

    #[test]
    fn merge_concatenates_transcripts() {
        let mut a = RescueReport::new();
        a.record(RescueRung::GminStep, 0.0, "gmin 1e-6");
        let mut b = RescueReport::new();
        let i = b.record(RescueRung::PseudoTransient, 0.0, "ramp");
        b.mark_success(i);
        a.merge(&b);
        assert_eq!(a.attempts(), 2);
        assert_eq!(a.signature(), "gmin-step;pseudo-transient!");
    }

    #[test]
    fn empty_report_displays_cleanly() {
        assert_eq!(RescueReport::new().to_string(), "no rescues");
        assert_eq!(RescueReport::new().signature(), "");
    }
}
