//! Breakpoint honoring for the adaptive transient controller.
//!
//! The golden decks `pulse_train.cir` and `pwl_ramp.cir` carry sources
//! whose corners are the whole story: a controller that steps over a
//! PULSE edge or a PWL corner smears the waveform no matter how tight
//! its LTE tolerance is. These tests pin two properties:
//!
//! 1. every breakpoint derived from the source waveforms is landed on
//!    *exactly* (bitwise `==` on the accepted times), and
//! 2. the deck-level adaptive run, resampled onto the `.tran` print
//!    grid, matches the fixed-step run within 1e-6 V.

use spice::deck::run_deck_with_tran;
use spice::netlist::parse_deck;
use spice::tran::{collect_breakpoints, AdaptiveOptions, TranOptions, TransientSimulator};
use spice::SolverKind;

const PULSE_TRAIN: &str = include_str!("decks/pulse_train.cir");
const PWL_RAMP: &str = include_str!("decks/pwl_ramp.cir");

/// Runs `deck`'s circuit under the adaptive controller and returns
/// (breakpoint schedule, accepted times).
fn adaptive_times(deck: &str, t_stop: f64, h0: f64) -> (Vec<f64>, Vec<f64>) {
    let circuit = parse_deck(deck).expect("golden deck parses");
    let bps = collect_breakpoints(&circuit, t_stop);
    let opts = TranOptions {
        adaptive: AdaptiveOptions::on(),
        ..Default::default()
    };
    let mut sim = TransientSimulator::new(circuit, opts).expect("op converges");
    let mut times = Vec::new();
    sim.run_adaptive(t_stop, h0, &bps, |s| times.push(s.time()))
        .expect("adaptive run completes");
    (bps, times)
}

#[test]
fn pulse_train_breakpoint_schedule_is_complete() {
    let circuit = parse_deck(PULSE_TRAIN).unwrap();
    let bps = collect_breakpoints(&circuit, 100e-9);
    // PULSE(0 1.8 5n 2n 3n 10n 25n): edges at delay, +rise, +width,
    // +fall, repeated every 25 ns inside the 100 ns window.
    let mut want = Vec::new();
    for k in 0..4u32 {
        let t0 = 5e-9 + 25e-9 * f64::from(k);
        want.extend([t0, t0 + 2e-9, t0 + 12e-9, t0 + 15e-9]);
    }
    for w in want {
        assert!(
            bps.iter().any(|&b| (b - w).abs() < 1e-21),
            "edge {w:e} missing from schedule {bps:?}"
        );
    }
}

#[test]
fn adaptive_lands_exactly_on_every_pulse_edge() {
    let (bps, times) = adaptive_times(PULSE_TRAIN, 100e-9, 1e-9);
    assert!(!bps.is_empty(), "pulse train must yield breakpoints");
    for bp in &bps {
        assert!(
            times.iter().any(|t| t == bp),
            "PULSE edge {bp:e} not hit exactly; accepted times {times:?}"
        );
    }
}

#[test]
fn adaptive_lands_exactly_on_every_pwl_corner() {
    let (bps, times) = adaptive_times(PWL_RAMP, 80e-9, 1e-9);
    // All five interior PWL corners (t = 0 is the start, not a breakpoint).
    for w in [10e-9, 15e-9, 20e-9, 40e-9, 45e-9, 60e-9] {
        assert!(
            bps.iter().any(|&b| (b - w).abs() < 1e-21),
            "corner {w:e} missing from schedule {bps:?}"
        );
    }
    for bp in &bps {
        assert!(
            times.iter().any(|t| t == bp),
            "PWL corner {bp:e} not hit exactly; accepted times {times:?}"
        );
    }
}

/// Deck-level parity: the adaptive run, resampled onto the print grid,
/// agrees with the fixed-step run within 1e-6 V on both solver backends
/// — on these resistive decks both discretisations are exact between
/// corners, so the only slack is interpolation round-off.
#[test]
fn adaptive_deck_traces_match_fixed_step_within_1e6() {
    for (name, deck) in [("pulse_train", PULSE_TRAIN), ("pwl_ramp", PWL_RAMP)] {
        for solver in [SolverKind::Dense, SolverKind::Sparse] {
            let fixed = run_deck_with_tran(deck, solver, AdaptiveOptions::off())
                .unwrap_or_else(|e| panic!("{name} fixed ({solver:?}): {e}"));
            let adapt = run_deck_with_tran(deck, solver, AdaptiveOptions::on())
                .unwrap_or_else(|e| panic!("{name} adaptive ({solver:?}): {e}"));
            assert_eq!(fixed.tran.len(), adapt.tran.len(), "{name}: trace sets");
            for ft in &fixed.tran {
                let at = adapt.trace(&ft.node).expect("same print set");
                assert_eq!(ft.times, at.times, "{name}: print grids must be identical");
                for (i, (f, a)) in ft.values.iter().zip(&at.values).enumerate() {
                    assert!(
                        (f - a).abs() < 1e-6,
                        "{name} ({solver:?}) v({}) sample {i}: fixed {f} vs adaptive {a}",
                        ft.node
                    );
                }
            }
        }
    }
}

/// The point of adaptive stepping: the same accuracy with fewer
/// accepted steps. On the pulse train the fixed grid spends 100 steps;
/// the controller should cover the flat tops and the long off period
/// with far fewer while still hitting every edge.
#[test]
fn adaptive_accepts_fewer_steps_on_the_pulse_train() {
    let fixed = run_deck_with_tran(PULSE_TRAIN, SolverKind::Dense, AdaptiveOptions::off()).unwrap();
    let adapt = run_deck_with_tran(PULSE_TRAIN, SolverKind::Dense, AdaptiveOptions::on()).unwrap();
    let cf = fixed.tran_counters.expect(".tran ran");
    let ca = adapt.tran_counters.expect(".tran ran");
    assert!(
        ca.steps_accepted() < cf.steps_accepted(),
        "adaptive {ca} vs fixed {cf}"
    );
    assert!(ca.lte_evaluations > 0, "{ca}");
    assert_eq!(cf.lte_evaluations, 0, "fixed path never estimates LTE");
    assert!(
        ca.steps_rejected <= 4 * ca.steps_accepted() + 64,
        "rejection livelock: {ca}"
    );
}
