//! Paper-shaped outputs: aligned tables (like Table 1 / Table 2) and
//! series (like the BER curves and AC responses of Figures 4-6).

use std::fmt;

/// A printable table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Table {
    /// Caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row should match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut s = self.headers.join(",");
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        writeln!(f, "{}", self.title)?;
        let line: usize = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);
        writeln!(f, "{}", "-".repeat(line))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{h:>w$}", w = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(line))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:>w$}", w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A named (x, y) series.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Series {
    /// Series name.
    pub name: String,
    /// Sample points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from points.
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.to_string(),
            points,
        }
    }

    /// Renders `x,y` CSV with a header.
    pub fn to_csv(&self) -> String {
        let mut s = format!("x,{}\n", self.name);
        for (x, y) in &self.points {
            s.push_str(&format!("{x:.9e},{y:.9e}\n"));
        }
        s
    }

    /// Interleaves several series that share an x grid into a single CSV.
    ///
    /// # Panics
    ///
    /// Panics if series lengths differ.
    pub fn merge_csv(series: &[&Series]) -> String {
        let Some(first) = series.first() else {
            return String::new();
        };
        for s in series {
            assert_eq!(s.points.len(), first.points.len(), "length mismatch");
        }
        let mut out = String::from("x");
        for s in series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for i in 0..first.points.len() {
            out.push_str(&format!("{:.9e}", first.points[i].0));
            for s in series {
                out.push_str(&format!(",{:.9e}", s.points[i].1));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Table 1. CPU time comparison", &["Model", "CPU Time"]);
        t.push_row(vec!["ELDO".into(), "59 m 33 s".into()]);
        t.push_row(vec!["IDEAL".into(), "9 m 11 s".into()]);
        let s = t.to_string();
        assert!(s.contains("Table 1"));
        assert!(s.contains("ELDO"));
        assert!(s.lines().count() >= 6);
        let csv = t.to_csv();
        assert!(csv.starts_with("Model,CPU Time\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn series_csv() {
        let s = Series::new("ber", vec![(0.0, 0.5), (14.0, 1e-4)]);
        let csv = s.to_csv();
        assert!(csv.starts_with("x,ber\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn merged_series() {
        let a = Series::new("ideal", vec![(0.0, 1.0), (1.0, 2.0)]);
        let b = Series::new("eldo", vec![(0.0, 3.0), (1.0, 4.0)]);
        let csv = Series::merge_csv(&[&a, &b]);
        assert!(csv.starts_with("x,ideal,eldo\n"));
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(Series::merge_csv(&[]), "");
    }
}
