//! Transmit-pulse spectra against the FCC indoor UWB mask — the
//! regulatory constraint the paper's introduction starts from ("the FCC
//! released the spectrum between 3.1 and 10.6 GHz for unlicensed use").
//!
//! ```sh
//! cargo run --release --example fcc_mask
//! ```

use uwb_phy::pulse::PulseShape;
use uwb_phy::spectrum::{check_mask, fcc_indoor_mask, pulse_psd};

fn main() {
    let mask = fcc_indoor_mask();
    println!("FCC indoor UWB mask (relative to the in-band allowance):");
    for seg in &mask {
        println!(
            "  {:>6.2} – {:>6.2} GHz : {:+.1} dBr",
            seg.f_lo / 1e9,
            (seg.f_hi / 1e9).min(99.0),
            seg.limit_dbr
        );
    }
    println!();

    for shape in [
        PulseShape::GaussianMonocycle { tau: 80e-12 },
        PulseShape::GaussianDoublet { tau: 80e-12 },
        PulseShape::GaussianFifth { tau: 51e-12 },
    ] {
        let psd = pulse_psd(&shape, 40e9, 12e9, 240);
        let (lo, hi) = psd.occupied_band(10.0);
        let report = check_mask(&psd, &mask);
        println!("{shape:?}");
        println!(
            "  spectral peak   : {:.2} GHz, −10 dB band {:.2}–{:.2} GHz",
            psd.peak_frequency() / 1e9,
            lo / 1e9,
            hi / 1e9
        );
        println!(
            "  mask            : {} (worst margin {:+.1} dB at {:.2} GHz)",
            if report.compliant {
                "COMPLIANT"
            } else {
                "VIOLATES"
            },
            report.worst_margin_db,
            report.worst_frequency / 1e9
        );
        println!();
    }
    println!(
        "(the baseband derivatives used by carrierless impulse radios trade\n\
         low-frequency leakage against bandwidth — the 5th derivative is the\n\
         classic FCC-friendly choice, which is why it ships in `PulseShape`)"
    );
}
