//! The four-phase top-down flow (the paper's Figure 2).
//!
//! * **Phase I** — one behavioural entity: squarer + ideal integration +
//!   ideal synchronisation/ADC; checked against the closed-form reference
//!   (the paper checked against Matlab).
//! * **Phase II** — the full architectural partition with ideal block
//!   equations (quantisation and saturation kept).
//! * **Phase III** — substitute-and-play: the I&D block replaced by the
//!   transistor-level netlist inside the *same* testbench.
//! * **Phase IV** — the detailed block re-abstracted into the calibrated
//!   two-pole behavioural model.

use crate::erc::{check_phase, ErcConfig, FlowError};
use crate::metrics::format_duration;
use crate::report::Table;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use uwb_phy::modulation::{demodulate_energy, PpmConfig};
use uwb_phy::noise::Awgn;
use uwb_phy::waveform::Waveform;
use uwb_txrx::integrator::{build_integrator, Fidelity};
use uwb_txrx::receiver::{ReceiveError, Receiver, ReceiverConfig, SFD_PATTERN};
use uwb_txrx::transmitter::Transmitter;

/// A methodology phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Behavioural single entity.
    I,
    /// Architectural partition, ideal equations.
    II,
    /// Transistor netlist in the loop (I&D).
    III,
    /// Calibrated behavioural model of the detailed block.
    IV,
}

impl Phase {
    /// All phases in order.
    pub const ALL: [Phase; 4] = [Phase::I, Phase::II, Phase::III, Phase::IV];

    /// Human description.
    pub fn description(self) -> &'static str {
        match self {
            Phase::I => "behavioural single entity (Matlab-coherent)",
            Phase::II => "architectural partition, ideal block equations",
            Phase::III => "substitute-and-play: SPICE I&D inside the system",
            Phase::IV => "calibrated two-pole model of the I&D",
        }
    }

    /// I&D fidelity used by the receiver in this phase (`None` for the
    /// Phase I single-entity path, which bypasses the architecture).
    pub fn fidelity(self) -> Option<Fidelity> {
        match self {
            Phase::I => None,
            Phase::II => Some(Fidelity::Ideal),
            Phase::III => Some(Fidelity::Circuit),
            Phase::IV => Some(Fidelity::Behavioral),
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::I => write!(f, "Phase I"),
            Phase::II => write!(f, "Phase II"),
            Phase::III => write!(f, "Phase III"),
            Phase::IV => write!(f, "Phase IV"),
        }
    }
}

/// The shared scenario every phase is run against.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowScenario {
    /// Receiver configuration (Phase II-IV).
    pub receiver: ReceiverConfig,
    /// Payload bits.
    pub payload: Vec<bool>,
    /// Preamble length, symbols.
    pub preamble_len: usize,
    /// Quiet lead-in, s.
    pub lead_in: f64,
    /// Per-bit receive energy, V²s.
    pub eb_rx: f64,
    /// Eb/N0 at the receiver input, dB.
    pub ebn0_db: f64,
    /// RNG seed (same waveform across phases).
    pub seed: u64,
}

impl Default for FlowScenario {
    fn default() -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        FlowScenario {
            receiver: ReceiverConfig::default(),
            payload: (0..16).map(|_| rng.gen_bool(0.5)).collect(),
            preamble_len: 28,
            lead_in: 0.8e-6,
            eb_rx: 1e-14,
            ebn0_db: 24.0,
            seed: 7,
        }
    }
}

impl FlowScenario {
    /// Builds the (deterministic) observed waveform and the payload start
    /// time.
    pub fn waveform(&self) -> (Waveform, f64) {
        let mut ppm = self.receiver.ppm;
        ppm.pulse_energy = self.eb_rx;
        let tx = Transmitter::new(ppm, self.preamble_len);
        let air = tx.transmit(&self.payload);
        let total = self.lead_in + air.duration() + 0.5e-6;
        let mut w = Waveform::zeros(ppm.sample_rate, (total * ppm.sample_rate) as usize);
        w.add_at(&air, self.lead_in);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        Awgn::from_ebn0_db(self.eb_rx, self.ebn0_db).add_to(&mut w, &mut rng);
        let t0 = self.lead_in + (self.preamble_len + SFD_PATTERN.len()) as f64 * ppm.symbol_period;
        (w, t0)
    }
}

/// Outcome of running one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Which phase ran.
    pub phase: Phase,
    /// Named scalar metrics.
    pub metrics: BTreeMap<String, f64>,
    /// Non-fatal events demoted from failures — e.g. solver steps that
    /// only completed via the convergence-rescue ladder.
    pub warnings: Vec<String>,
    /// Wall time spent.
    pub wall: Duration,
}

impl PhaseReport {
    /// Fetches a metric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }
}

/// Runner for the four-phase flow over one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TopDownFlow {
    /// The scenario.
    pub scenario: FlowScenario,
    /// Pre-simulation ERC gate policy (on by default).
    pub erc: ErcConfig,
}

impl TopDownFlow {
    /// Creates the flow with the default (enabled) ERC gate.
    pub fn new(scenario: FlowScenario) -> Self {
        TopDownFlow {
            scenario,
            erc: ErcConfig::default(),
        }
    }

    /// Creates the flow with the ERC gate disabled (`--no-erc`).
    pub fn without_erc(scenario: FlowScenario) -> Self {
        TopDownFlow {
            scenario,
            erc: ErcConfig::disabled(),
        }
    }

    /// Runs a single phase, after it passes the static ERC gate.
    ///
    /// # Errors
    ///
    /// [`FlowError::Erc`] when the gate denies the phase before any solver
    /// runs; [`FlowError::Receive`] for downstream reception/construction
    /// failures.
    pub fn run_phase(&self, phase: Phase) -> Result<PhaseReport, FlowError> {
        check_phase(phase, &self.erc)?;
        let (w, t0) = self.scenario.waveform();
        let payload = &self.scenario.payload;
        let start = Instant::now();
        let mut metrics = BTreeMap::new();
        let mut warnings = Vec::new();

        match phase.fidelity() {
            None => {
                // Phase I: genie-timed behavioural energy detection over the
                // raw waveform — the single-entity abstraction.
                let ppm = PpmConfig {
                    pulse_energy: self.scenario.eb_rx,
                    ..self.scenario.receiver.ppm
                };
                let bits = demodulate_energy(&w, &ppm, t0, payload.len());
                let errors = bits.iter().zip(payload).filter(|(a, b)| a != b).count();
                metrics.insert("bit_errors".into(), errors as f64);
                metrics.insert("bits".into(), payload.len() as f64);
            }
            Some(f) => {
                let integrator = build_integrator(f).map_err(ReceiveError::Integrator)?;
                let mut ppm = self.scenario.receiver.ppm;
                ppm.pulse_energy = self.scenario.eb_rx;
                let mut rx = Receiver::new(
                    ReceiverConfig {
                        ppm,
                        ..self.scenario.receiver.clone()
                    },
                    integrator,
                );
                let rep = rx.receive(&w, payload.len())?;
                let errors = rep.bits.iter().zip(payload).filter(|(a, b)| a != b).count();
                metrics.insert("bit_errors".into(), errors as f64);
                metrics.insert("bits".into(), payload.len() as f64);
                metrics.insert("vga_code".into(), rep.vga_code as f64);
                if let Some(anchor) = rep.sfd_anchor {
                    let true_anchor = self.scenario.lead_in
                        + self.scenario.preamble_len as f64
                            * self.scenario.receiver.ppm.symbol_period;
                    metrics.insert("anchor_error_ns".into(), (anchor - true_anchor) * 1e9);
                }
                metrics.insert(
                    "newton_iterations".into(),
                    rx.integrator_newton_iterations() as f64,
                );
                let rescues = rx.integrator_rescue_events();
                metrics.insert("rescue_events".into(), rescues as f64);
                if rescues > 0 {
                    warnings.push(format!(
                        "{phase}: {rescues} solver step(s) completed only via the \
                         convergence-rescue ladder"
                    ));
                }
            }
        }
        Ok(PhaseReport {
            phase,
            metrics,
            warnings,
            wall: start.elapsed(),
        })
    }

    /// Runs all four phases in order.
    ///
    /// # Errors
    ///
    /// Stops at the first failing phase.
    pub fn run_all(&self) -> Result<Vec<PhaseReport>, FlowError> {
        Phase::ALL.iter().map(|&p| self.run_phase(p)).collect()
    }

    /// Runs Phase IV with a behavioural model *freshly extracted* from the
    /// circuit (AC characterisation + two-pole fit), instead of the
    /// built-in default calibration — the complete
    /// characterise-and-re-abstract loop in one call.
    ///
    /// # Errors
    ///
    /// [`FlowError::Erc`] when the gate denies Phase IV; otherwise
    /// propagates characterisation and reception failures.
    pub fn run_phase4_calibrated(&self) -> Result<PhaseReport, FlowError> {
        check_phase(Phase::IV, &self.erc)?;
        let (_, fit) = crate::calibrate::phase4_extract(&Default::default()).map_err(|e| {
            ReceiveError::Integrator(uwb_txrx::integrator::IntegratorError::Circuit(e))
        })?;
        let integrator = Box::new(uwb_txrx::integrator::BehavioralIntegrator::new(
            fit.to_model(),
        ));
        let (w, _t0) = self.scenario.waveform();
        let payload = &self.scenario.payload;
        let start = Instant::now();
        let mut ppm = self.scenario.receiver.ppm;
        ppm.pulse_energy = self.scenario.eb_rx;
        let mut rx = Receiver::new(
            ReceiverConfig {
                ppm,
                ..self.scenario.receiver.clone()
            },
            integrator,
        );
        let rep = rx.receive(&w, payload.len())?;
        let errors = rep.bits.iter().zip(payload).filter(|(a, b)| a != b).count();
        let mut metrics = BTreeMap::new();
        metrics.insert("bit_errors".into(), errors as f64);
        metrics.insert("bits".into(), payload.len() as f64);
        metrics.insert("fit_gain_db".into(), fit.gain_db);
        metrics.insert("fit_pole1_hz".into(), fit.f_pole1);
        metrics.insert("fit_pole2_hz".into(), fit.f_pole2);
        Ok(PhaseReport {
            phase: Phase::IV,
            metrics,
            warnings: Vec::new(),
            wall: start.elapsed(),
        })
    }
}

/// Formats phase reports side by side.
pub fn flow_table(reports: &[PhaseReport]) -> Table {
    let mut t = Table::new(
        "Top-down flow: phase comparison",
        &["Phase", "Bit errors", "Anchor err (ns)", "VGA code", "Wall"],
    );
    for r in reports {
        t.push_row(vec![
            r.phase.to_string(),
            format!("{:.0}", r.metric("bit_errors").unwrap_or(f64::NAN)),
            r.metric("anchor_error_ns")
                .map_or("-".into(), |v| format!("{v:+.2}")),
            r.metric("vga_code")
                .map_or("-".into(), |v| format!("{v:.0}")),
            format_duration(r.wall),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_scenario() -> FlowScenario {
        FlowScenario {
            payload: vec![true, false, true, true, false, false],
            ..Default::default()
        }
    }

    #[test]
    fn phase_metadata() {
        assert_eq!(Phase::ALL.len(), 4);
        assert_eq!(Phase::III.fidelity(), Some(Fidelity::Circuit));
        assert_eq!(Phase::I.fidelity(), None);
        assert!(Phase::IV.description().contains("two-pole"));
        assert_eq!(Phase::II.to_string(), "Phase II");
    }

    #[test]
    fn phase1_decodes_cleanly() {
        let flow = TopDownFlow::new(short_scenario());
        let rep = flow.run_phase(Phase::I).expect("phase I");
        assert_eq!(rep.metric("bit_errors"), Some(0.0));
        assert_eq!(rep.metric("bits"), Some(6.0));
    }

    #[test]
    fn phase2_full_architecture_decodes() {
        let flow = TopDownFlow::new(short_scenario());
        let rep = flow.run_phase(Phase::II).expect("phase II");
        assert_eq!(rep.metric("bit_errors"), Some(0.0));
        assert!(rep.metric("anchor_error_ns").unwrap().abs() < 10.0);
    }

    #[test]
    fn phase4_model_decodes() {
        let flow = TopDownFlow::new(short_scenario());
        let rep = flow.run_phase(Phase::IV).expect("phase IV");
        assert_eq!(rep.metric("bit_errors"), Some(0.0));
    }

    #[test]
    fn scenario_waveform_is_deterministic() {
        let s = short_scenario();
        let (a, t0a) = s.waveform();
        let (b, t0b) = s.waveform();
        assert_eq!(a, b);
        assert_eq!(t0a, t0b);
    }

    #[test]
    #[ignore = "characterises the circuit; slow in debug builds"]
    fn phase4_live_calibration_decodes() {
        let flow = TopDownFlow::new(short_scenario());
        let rep = flow.run_phase4_calibrated().expect("calibrated phase IV");
        assert_eq!(rep.metric("bit_errors"), Some(0.0));
        assert!(rep.metric("fit_gain_db").unwrap() > 15.0);
        assert!(rep.metric("fit_pole1_hz").unwrap() > 1e5);
    }

    #[test]
    fn flow_table_renders() {
        let flow = TopDownFlow::new(short_scenario());
        let reports = vec![
            flow.run_phase(Phase::I).unwrap(),
            flow.run_phase(Phase::II).unwrap(),
        ];
        let t = flow_table(&reports);
        let s = t.to_string();
        assert!(s.contains("Phase I") && s.contains("Phase II"));
    }
}
