//! Modified nodal analysis: unknown layout and stamp assembly.
//!
//! Unknowns are node voltages (every node except ground) followed by branch
//! currents (one per voltage source and VCVS). Nonlinear devices are stamped
//! as linearised companions around the current Newton candidate; reactive
//! devices as Backward-Euler companions around the previous time point.

use crate::circuit::{Circuit, Element, NodeId};
use crate::error::SpiceError;
use crate::linalg::Matrix;
use crate::mosfet::eval_mosfet;
use sim_core::sparse::SparseMatrix;
use std::collections::HashMap;

/// Finite-difference step for device linearisation, volts.
const FD_STEP: f64 = 1e-6;

/// Unknown-vector layout for a circuit.
#[derive(Debug, Clone)]
pub struct MnaLayout {
    n_nodes: usize,
    branch_index: HashMap<usize, usize>,
    size: usize,
}

impl MnaLayout {
    /// Computes the layout for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let n_nodes = circuit.num_nodes();
        let mut branch_index = HashMap::new();
        let mut next = n_nodes - 1;
        for (idx, (_, e)) in circuit.elements().iter().enumerate() {
            if matches!(
                e,
                Element::Vsource { .. }
                    | Element::Vcvs { .. }
                    | Element::Ccvs { .. }
                    | Element::Inductor { .. }
            ) {
                branch_index.insert(idx, next);
                next += 1;
            }
        }
        MnaLayout {
            n_nodes,
            branch_index,
            size: next,
        }
    }

    /// Total number of unknowns.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Unknown index of a node's voltage; `None` for ground.
    pub fn node_unknown(&self, node: NodeId) -> Option<usize> {
        if node == NodeId::GROUND {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Unknown index of an element's branch current, if it has one.
    pub fn branch_unknown(&self, element_idx: usize) -> Option<usize> {
        self.branch_index.get(&element_idx).copied()
    }

    /// Voltage of `node` in solution vector `x` (0 for ground).
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_unknown(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    /// Number of circuit nodes including ground.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }
}

/// Companion-model discretisation for the *linear* capacitors of a
/// transient assembly. Selecting the model per step (rather than baking
/// it into the simulator's state layout) is what lets the adaptive
/// controller switch integration order mid-run without re-deriving any
/// state: the caller keeps one capacitor-current vector alive and merely
/// chooses which rule consumes it.
///
/// Device capacitances (MOSFET Meyer caps, junction caps) always use
/// Backward Euler regardless of this choice — their values change
/// between steps, which breaks the trapezoidal charge bookkeeping.
/// Inductors likewise always use the BE companion.
#[derive(Debug, Clone, Copy)]
pub enum CompanionModel<'a> {
    /// Backward Euler (order 1): `i = (C/h)(v − v_prev)`.
    BackwardEuler,
    /// Trapezoidal (order 2): `i = (2C/h)(v − v_prev) − i_prev`, fed by
    /// the previous capacitor currents, one slot per linear capacitor in
    /// element order. A capacitor with no slot falls back to BE.
    Trapezoidal {
        /// Previous per-capacitor currents in element order.
        cap_currents: &'a [f64],
    },
}

/// What kind of large-signal assembly to perform.
#[derive(Debug, Clone, Copy)]
pub enum AssembleMode<'a> {
    /// DC: capacitors open.
    Dc,
    /// Transient step of width `h` from previous solution.
    Transient {
        /// Previous converged solution.
        x_prev: &'a [f64],
        /// Step width, s.
        h: f64,
        /// Discretisation rule for linear capacitors this step.
        companion: CompanionModel<'a>,
    },
}

/// Parameters shared by every assembly call.
#[derive(Debug, Clone, Copy)]
pub struct AssembleParams<'a> {
    /// Simulation time for waveform evaluation, s.
    pub t: f64,
    /// External (co-simulation) source values.
    pub externals: &'a [f64],
    /// Minimum conductance added from device nodes to ground.
    pub gmin: f64,
    /// Scale factor on independent sources (source stepping), normally 1.
    pub source_scale: f64,
}

/// A real matrix that MNA stamps accumulate into — implemented by the
/// dense [`Matrix`] and the triplet-logging [`SparseMatrix`], so one
/// assembly routine serves both solver backends.
pub trait Stamp {
    /// Prepares the matrix for a fresh assembly pass (dense: zero out;
    /// sparse: rewind the triplet log).
    fn reset(&mut self);
    /// Accumulates `v` at `(row, col)`.
    fn add(&mut self, row: usize, col: usize, v: f64);
    /// Matrix order.
    fn order(&self) -> usize;
}

impl Stamp for Matrix {
    fn reset(&mut self) {
        self.clear();
    }
    fn add(&mut self, row: usize, col: usize, v: f64) {
        Matrix::add(self, row, col, v);
    }
    fn order(&self) -> usize {
        Matrix::order(self)
    }
}

impl Stamp for SparseMatrix<f64> {
    fn reset(&mut self) {
        self.begin_assembly();
    }
    fn add(&mut self, row: usize, col: usize, v: f64) {
        SparseMatrix::add(self, row, col, v);
    }
    fn order(&self) -> usize {
        SparseMatrix::order(self)
    }
}

/// Upper-bound estimate of the assembled MNA nonzero count, from element
/// stamp footprints plus the gmin diagonal. Feeds the sparse/dense
/// heuristic (`SolverKind::picks_sparse`) without assembling anything.
pub fn estimate_nnz(circuit: &Circuit, layout: &MnaLayout) -> usize {
    let mut nnz = layout.size();
    for (_, e) in circuit.elements() {
        nnz += match e {
            // Ids linearization (2 rows × 4 deps) + three gmin floors +
            // five Meyer/junction companions in transient.
            Element::Mosfet { .. } => 44,
            // Linearized current over 4 dependency nodes.
            Element::Switch { .. } => 16,
            Element::Diode { .. } => 8,
            Element::Resistor { .. } | Element::Capacitor { .. } => 4,
            // Branch row/column couple + companion diagonal.
            Element::Vsource { .. } | Element::Vcvs { .. } | Element::Inductor { .. } => 8,
            Element::Isource { .. } => 0,
            Element::Vccs { .. } => 4,
            // Two KCL couplings into the controlling branch column.
            Element::Cccs { .. } => 2,
            // Branch row/column couple + the rm coupling.
            Element::Ccvs { .. } => 8,
        };
    }
    nnz
}

/// What one MNA unknown (a row/column index of the assembled system)
/// stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MnaUnknown {
    /// The voltage of a node (never ground).
    NodeVoltage(NodeId),
    /// The branch current of the element at this index in
    /// [`Circuit::elements`].
    BranchCurrent(usize),
}

impl MnaLayout {
    /// Maps unknown index `k` back to the node voltage or element branch
    /// current it stands for (`None` when `k` is out of range).
    pub fn unknown_of(&self, k: usize) -> Option<MnaUnknown> {
        if k < self.n_nodes - 1 {
            return Some(MnaUnknown::NodeVoltage(NodeId(k + 1)));
        }
        self.branch_index
            .iter()
            .find(|&(_, &u)| u == k)
            .map(|(&elem, _)| MnaUnknown::BranchCurrent(elem))
    }
}

/// Structural nonzero positions of the **DC** MNA matrix, *excluding*
/// every gmin regularisation entry — the global node-to-ground floor and
/// the MOSFET junction floors that [`assemble`] always stamps.
///
/// This is the honest pattern for structural solvability analysis: gmin
/// puts a value on every node diagonal, so the assembled pattern can
/// never show an empty row even when no element contributes a DC
/// equation at that node. The static ERC layer runs maximum matching on
/// *this* pattern instead, so "node has no independent DC equation"
/// surfaces as a named diagnostic rather than a gmin-scale pivot.
///
/// Positions may repeat; callers deduplicate.
///
/// # Errors
///
/// [`SpiceError::InvalidParameter`] when a voltage-defined element has no
/// branch unknown in `layout` (layout computed for a different circuit).
pub fn dc_pattern(
    circuit: &Circuit,
    layout: &MnaLayout,
) -> Result<Vec<(usize, usize)>, SpiceError> {
    let mut out = Vec::with_capacity(estimate_nnz(circuit, layout));
    let branch = |idx: usize, name: &str| {
        layout
            .branch_unknown(idx)
            .ok_or_else(|| SpiceError::InvalidParameter {
                element: name.to_string(),
                message: "voltage-defined element has no branch unknown in the MNA layout"
                    .to_string(),
            })
    };
    // A two-terminal conductance footprint between `p` and `n`.
    let conductance = |out: &mut Vec<(usize, usize)>, p: NodeId, n: NodeId| {
        let (up, un) = (layout.node_unknown(p), layout.node_unknown(n));
        if let Some(i) = up {
            out.push((i, i));
        }
        if let Some(j) = un {
            out.push((j, j));
        }
        if let (Some(i), Some(j)) = (up, un) {
            out.push((i, j));
            out.push((j, i));
        }
    };
    // A voltage-defined branch footprint: KCL couplings into the branch
    // column plus the branch row reading the terminal voltages.
    let voltage_branch = |out: &mut Vec<(usize, usize)>, p: NodeId, n: NodeId, ib: usize| {
        if let Some(i) = layout.node_unknown(p) {
            out.push((i, ib));
            out.push((ib, i));
        }
        if let Some(j) = layout.node_unknown(n) {
            out.push((j, ib));
            out.push((ib, j));
        }
    };
    for (idx, (name, e)) in circuit.elements().iter().enumerate() {
        match e {
            Element::Resistor { p, n, .. } | Element::Diode { p, n, .. } => {
                conductance(&mut out, *p, *n);
            }
            // DC opens contribute nothing; current sources only hit the RHS.
            Element::Capacitor { .. } | Element::Isource { .. } => {}
            Element::Vsource { p, n, .. } | Element::Inductor { p, n, .. } => {
                let ib = branch(idx, name)?;
                voltage_branch(&mut out, *p, *n, ib);
            }
            Element::Vcvs { p, n, cp, cn, .. } => {
                let ib = branch(idx, name)?;
                voltage_branch(&mut out, *p, *n, ib);
                for c in [*cp, *cn] {
                    if let Some(k) = layout.node_unknown(c) {
                        out.push((ib, k));
                    }
                }
            }
            Element::Vccs { p, n, cp, cn, .. } => {
                for node in [*p, *n] {
                    if let Some(row) = layout.node_unknown(node) {
                        for c in [*cp, *cn] {
                            if let Some(k) = layout.node_unknown(c) {
                                out.push((row, k));
                            }
                        }
                    }
                }
            }
            Element::Cccs { p, n, ctrl, .. } => {
                let ib_ctrl = branch(*ctrl, name)?;
                for node in [*p, *n] {
                    if let Some(row) = layout.node_unknown(node) {
                        out.push((row, ib_ctrl));
                    }
                }
            }
            Element::Ccvs { p, n, ctrl, .. } => {
                let ib = branch(idx, name)?;
                let ib_ctrl = branch(*ctrl, name)?;
                voltage_branch(&mut out, *p, *n, ib);
                out.push((ib, ib_ctrl));
            }
            Element::Switch { p, n, cp, cn, .. } => {
                for node in [*p, *n] {
                    if let Some(row) = layout.node_unknown(node) {
                        for dep in [*p, *n, *cp, *cn] {
                            if let Some(col) = layout.node_unknown(dep) {
                                out.push((row, col));
                            }
                        }
                    }
                }
            }
            Element::Mosfet { d, g, s, b, .. } => {
                // The channel linearisation: Ids rows over all four
                // terminal columns. The gmin junction floors are omitted
                // on purpose.
                for node in [*d, *s] {
                    if let Some(row) = layout.node_unknown(node) {
                        for dep in [*g, *d, *s, *b] {
                            if let Some(col) = layout.node_unknown(dep) {
                                out.push((row, col));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Smooth switch conductance: log-space blend between on and off.
pub(crate) fn switch_conductance(vc: f64, ron: f64, roff: f64, vt: f64, vs: f64) -> f64 {
    let s = 1.0 / (1.0 + (-(vc - vt) / vs).exp());
    let ln_g = s * (1.0 / ron).ln() + (1.0 - s) * (1.0 / roff).ln();
    ln_g.exp()
}

fn d_switch_conductance(vc: f64, ron: f64, roff: f64, vt: f64, vs: f64) -> f64 {
    let h = 1e-6;
    (switch_conductance(vc + h, ron, roff, vt, vs) - switch_conductance(vc - h, ron, roff, vt, vs))
        / (2.0 * h)
}

/// Thermal voltage at room temperature, V.
pub(crate) const VT: f64 = 0.02585;

/// Diode current and conductance with exponential limiting: beyond the
/// critical voltage the exponential continues linearly (keeps Newton
/// iterates finite — the classic pnjlim-style safeguard).
pub(crate) fn diode_iv(is: f64, nf: f64, v: f64) -> (f64, f64) {
    let nvt = nf * VT;
    let v_crit = 40.0 * nvt;
    if v <= v_crit {
        let e = (v / nvt).exp();
        (is * (e - 1.0), is * e / nvt)
    } else {
        let e = (v_crit / nvt).exp();
        let i_crit = is * (e - 1.0);
        let g_crit = is * e / nvt;
        (i_crit + g_crit * (v - v_crit), g_crit)
    }
}

/// Stamps a conductance `g` between nodes `p` and `n`.
fn stamp_conductance<M: Stamp>(layout: &MnaLayout, mat: &mut M, p: NodeId, n: NodeId, g: f64) {
    let up = layout.node_unknown(p);
    let un = layout.node_unknown(n);
    if let Some(i) = up {
        mat.add(i, i, g);
    }
    if let Some(j) = un {
        mat.add(j, j, g);
    }
    if let (Some(i), Some(j)) = (up, un) {
        mat.add(i, j, -g);
        mat.add(j, i, -g);
    }
}

/// Stamps a linearised current `I(p→n) ≈ i0 + Σ gk (v[dep_k] − v0[dep_k])`.
///
/// `deps` pairs each dependency node with ∂I/∂V of that node.
#[allow(clippy::too_many_arguments)]
fn stamp_linearized_current<M: Stamp>(
    layout: &MnaLayout,
    mat: &mut M,
    rhs: &mut [f64],
    p: NodeId,
    n: NodeId,
    deps: &[(NodeId, f64)],
    i0: f64,
    v0: impl Fn(NodeId) -> f64,
) {
    let up = layout.node_unknown(p);
    let un = layout.node_unknown(n);
    let mut ieq = -i0;
    for &(dep, g) in deps {
        ieq += g * v0(dep);
        if let Some(col) = layout.node_unknown(dep) {
            if let Some(i) = up {
                mat.add(i, col, g);
            }
            if let Some(j) = un {
                mat.add(j, col, -g);
            }
        }
    }
    if let Some(i) = up {
        rhs[i] += ieq;
    }
    if let Some(j) = un {
        rhs[j] -= ieq;
    }
}

/// Stamps a BE companion for a capacitor `c` between `p` and `n`.
#[allow(clippy::too_many_arguments)]
fn stamp_capacitor_be<M: Stamp>(
    layout: &MnaLayout,
    mat: &mut M,
    rhs: &mut [f64],
    p: NodeId,
    n: NodeId,
    c: f64,
    v_prev_across: f64,
    h: f64,
) {
    let geq = c / h;
    stamp_conductance(layout, mat, p, n, geq);
    let ieq = geq * v_prev_across;
    if let Some(i) = layout.node_unknown(p) {
        rhs[i] += ieq;
    }
    if let Some(j) = layout.node_unknown(n) {
        rhs[j] -= ieq;
    }
}

/// Assembles the linearised MNA system `mat · x_new = rhs` around the
/// Newton candidate `x`, into any [`Stamp`] backend.
///
/// # Errors
///
/// [`SpiceError::InvalidParameter`] when a voltage-defined element
/// (vsource, VCVS, inductor) has no branch unknown in `layout` — i.e. the
/// layout was computed for a different circuit.
///
/// # Panics
///
/// Panics if `mat`/`rhs` dimensions disagree with `layout`.
#[allow(clippy::too_many_lines)]
pub fn assemble<M: Stamp>(
    circuit: &Circuit,
    layout: &MnaLayout,
    x: &[f64],
    mode: AssembleMode<'_>,
    params: &AssembleParams<'_>,
    mat: &mut M,
    rhs: &mut [f64],
) -> Result<(), SpiceError> {
    assert_eq!(mat.order(), layout.size());
    assert_eq!(rhs.len(), layout.size());
    mat.reset();
    for v in rhs.iter_mut() {
        *v = 0.0;
    }
    let v_at = |node: NodeId| layout.voltage(x, node);
    let branch = |idx: usize, name: &str| {
        layout
            .branch_unknown(idx)
            .ok_or_else(|| SpiceError::InvalidParameter {
                element: name.to_string(),
                message: "voltage-defined element has no branch unknown in the MNA layout \
                          (layout computed for a different circuit?)"
                    .to_string(),
            })
    };

    let mut cap_index = 0usize;
    for (idx, (name, e)) in circuit.elements().iter().enumerate() {
        match e {
            Element::Resistor { p, n, r } => {
                stamp_conductance(layout, mat, *p, *n, 1.0 / r);
            }
            Element::Capacitor { p, n, c, ic: _ } => {
                if let AssembleMode::Transient {
                    x_prev,
                    h,
                    companion,
                } = mode
                {
                    let vp = layout.voltage(x_prev, *p) - layout.voltage(x_prev, *n);
                    let i_prev = match companion {
                        CompanionModel::Trapezoidal { cap_currents } => {
                            cap_currents.get(cap_index).copied()
                        }
                        CompanionModel::BackwardEuler => None,
                    };
                    match i_prev {
                        Some(i_prev) => {
                            // Trapezoidal companion:
                            // i = (2C/h)(v − v_prev) − i_prev.
                            let geq = 2.0 * c / h;
                            stamp_conductance(layout, mat, *p, *n, geq);
                            let ieq = geq * vp + i_prev;
                            if let Some(i) = layout.node_unknown(*p) {
                                rhs[i] += ieq;
                            }
                            if let Some(j) = layout.node_unknown(*n) {
                                rhs[j] -= ieq;
                            }
                        }
                        None => {
                            stamp_capacitor_be(layout, mat, rhs, *p, *n, *c, vp, h);
                        }
                    }
                }
                // DC: open circuit.
                cap_index += 1;
            }
            Element::Vsource { p, n, wave, .. } => {
                let ib = branch(idx, name)?;
                let v = wave.value_at(params.t, params.externals) * params.source_scale;
                if let Some(i) = layout.node_unknown(*p) {
                    mat.add(i, ib, 1.0);
                    mat.add(ib, i, 1.0);
                }
                if let Some(j) = layout.node_unknown(*n) {
                    mat.add(j, ib, -1.0);
                    mat.add(ib, j, -1.0);
                }
                rhs[ib] += v;
            }
            Element::Isource { p, n, wave, .. } => {
                let cur = wave.value_at(params.t, params.externals) * params.source_scale;
                if let Some(i) = layout.node_unknown(*p) {
                    rhs[i] -= cur;
                }
                if let Some(j) = layout.node_unknown(*n) {
                    rhs[j] += cur;
                }
            }
            Element::Vcvs { p, n, cp, cn, gain } => {
                let ib = branch(idx, name)?;
                if let Some(i) = layout.node_unknown(*p) {
                    mat.add(i, ib, 1.0);
                    mat.add(ib, i, 1.0);
                }
                if let Some(j) = layout.node_unknown(*n) {
                    mat.add(j, ib, -1.0);
                    mat.add(ib, j, -1.0);
                }
                if let Some(k) = layout.node_unknown(*cp) {
                    mat.add(ib, k, -gain);
                }
                if let Some(k) = layout.node_unknown(*cn) {
                    mat.add(ib, k, *gain);
                }
            }
            Element::Vccs { p, n, cp, cn, gm } => {
                for (node, sign) in [(*p, 1.0), (*n, -1.0)] {
                    if let Some(row) = layout.node_unknown(node) {
                        if let Some(k) = layout.node_unknown(*cp) {
                            mat.add(row, k, sign * gm);
                        }
                        if let Some(k) = layout.node_unknown(*cn) {
                            mat.add(row, k, -sign * gm);
                        }
                    }
                }
            }
            Element::Cccs { p, n, ctrl, gain } => {
                // I(p→n) = gain · i_ctrl: KCL contributions into the
                // controlling source's branch-current column.
                let ib_ctrl = branch(*ctrl, name)?;
                if let Some(i) = layout.node_unknown(*p) {
                    mat.add(i, ib_ctrl, *gain);
                }
                if let Some(j) = layout.node_unknown(*n) {
                    mat.add(j, ib_ctrl, -*gain);
                }
            }
            Element::Ccvs { p, n, ctrl, rm } => {
                // Own branch current plus V(p) − V(n) − rm · i_ctrl = 0.
                let ib = branch(idx, name)?;
                let ib_ctrl = branch(*ctrl, name)?;
                if let Some(i) = layout.node_unknown(*p) {
                    mat.add(i, ib, 1.0);
                    mat.add(ib, i, 1.0);
                }
                if let Some(j) = layout.node_unknown(*n) {
                    mat.add(j, ib, -1.0);
                    mat.add(ib, j, -1.0);
                }
                mat.add(ib, ib_ctrl, -*rm);
            }
            Element::Switch {
                p,
                n,
                cp,
                cn,
                ron,
                roff,
                vt,
                vs,
            } => {
                let vc = v_at(*cp) - v_at(*cn);
                let vd = v_at(*p) - v_at(*n);
                let g = switch_conductance(vc, *ron, *roff, *vt, *vs);
                let dg = d_switch_conductance(vc, *ron, *roff, *vt, *vs);
                let i0 = g * vd;
                let deps = [(*p, g), (*n, -g), (*cp, dg * vd), (*cn, -dg * vd)];
                stamp_linearized_current(layout, mat, rhs, *p, *n, &deps, i0, v_at);
            }
            Element::Diode { p, n, is, nf } => {
                let v = v_at(*p) - v_at(*n);
                let (i0, g) = diode_iv(*is, *nf, v);
                let deps = [(*p, g), (*n, -g)];
                stamp_linearized_current(layout, mat, rhs, *p, *n, &deps, i0, v_at);
                stamp_conductance(layout, mat, *p, *n, params.gmin);
            }
            Element::Inductor { p, n, l } => {
                let ib = branch(idx, name)?;
                if let Some(i) = layout.node_unknown(*p) {
                    mat.add(i, ib, 1.0);
                    mat.add(ib, i, 1.0);
                }
                if let Some(j) = layout.node_unknown(*n) {
                    mat.add(j, ib, -1.0);
                    mat.add(ib, j, -1.0);
                }
                match mode {
                    AssembleMode::Dc => {
                        // Short circuit: v_p − v_n = 0 (row already stamped).
                    }
                    AssembleMode::Transient { x_prev, h, .. } => {
                        // BE companion: v = (L/h)(i − i_prev).
                        let i_prev = x_prev[ib];
                        mat.add(ib, ib, -l / h);
                        rhs[ib] -= l / h * i_prev;
                    }
                }
            }
            Element::Mosfet {
                d,
                g,
                s,
                b,
                model,
                w,
                l,
            } => {
                let pm = &circuit.models[*model].1;
                let (vg, vd, vs_, vb) = (v_at(*g), v_at(*d), v_at(*s), v_at(*b));
                let (ev, _sw) = eval_mosfet(pm, *w, *l, vg, vd, vs_, vb);
                // Finite-difference partials on physical terminal voltages:
                // immune to the polarity/swap sign pitfalls of analytic
                // transformations.
                let ids = |vg: f64, vd: f64, vs: f64, vb: f64| {
                    eval_mosfet(pm, *w, *l, vg, vd, vs, vb).0.ids
                };
                let ggd = (ids(vg, vd + FD_STEP, vs_, vb) - ids(vg, vd - FD_STEP, vs_, vb))
                    / (2.0 * FD_STEP);
                let ggg = (ids(vg + FD_STEP, vd, vs_, vb) - ids(vg - FD_STEP, vd, vs_, vb))
                    / (2.0 * FD_STEP);
                let ggs = (ids(vg, vd, vs_ + FD_STEP, vb) - ids(vg, vd, vs_ - FD_STEP, vb))
                    / (2.0 * FD_STEP);
                let ggb = (ids(vg, vd, vs_, vb + FD_STEP) - ids(vg, vd, vs_, vb - FD_STEP))
                    / (2.0 * FD_STEP);
                let deps = [(*g, ggg), (*d, ggd), (*s, ggs), (*b, ggb)];
                stamp_linearized_current(layout, mat, rhs, *d, *s, &deps, ev.ids, v_at);
                // Conductance floor keeps nodes from floating.
                stamp_conductance(layout, mat, *d, *b, params.gmin);
                stamp_conductance(layout, mat, *s, *b, params.gmin);
                stamp_conductance(layout, mat, *d, *s, params.gmin);

                if let AssembleMode::Transient { x_prev, h, .. } = mode {
                    // Meyer caps evaluated at the previous time point (held
                    // constant over the step, SPICE2-style) as BE companions.
                    let vgp = layout.voltage(x_prev, *g);
                    let vdp = layout.voltage(x_prev, *d);
                    let vsp = layout.voltage(x_prev, *s);
                    let vbp = layout.voltage(x_prev, *b);
                    let (evp, _) = eval_mosfet(pm, *w, *l, vgp, vdp, vsp, vbp);
                    stamp_capacitor_be(layout, mat, rhs, *g, *s, evp.cgs, vgp - vsp, h);
                    stamp_capacitor_be(layout, mat, rhs, *g, *d, evp.cgd, vgp - vdp, h);
                    stamp_capacitor_be(layout, mat, rhs, *g, *b, evp.cgb, vgp - vbp, h);
                    // Junction capacitances (fixed area approximation).
                    let cj = pm.cj * w * 0.5e-6;
                    stamp_capacitor_be(layout, mat, rhs, *d, *b, cj, vdp - vbp, h);
                    stamp_capacitor_be(layout, mat, rhs, *s, *b, cj, vsp - vbp, h);
                }
            }
        }
    }
    // Global gmin from every node to ground: guarantees a DC path.
    for node in 1..layout.n_nodes() {
        if let Some(i) = layout.node_unknown(NodeId(node)) {
            mat.add(i, i, params.gmin);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SourceWave;

    #[test]
    fn layout_counts_branches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, NodeId::GROUND, SourceWave::Dc(1.0));
        c.resistor("R1", a, b, 1e3);
        c.vcvs("E1", b, NodeId::GROUND, a, NodeId::GROUND, 2.0);
        let layout = MnaLayout::new(&c);
        // 2 node voltages + 2 branch currents.
        assert_eq!(layout.size(), 4);
        assert_eq!(layout.node_unknown(NodeId::GROUND), None);
        assert_eq!(layout.node_unknown(a), Some(0));
        assert_eq!(layout.branch_unknown(0), Some(2));
        assert_eq!(layout.branch_unknown(2), Some(3));
        assert_eq!(layout.branch_unknown(1), None);
    }

    #[test]
    fn resistive_divider_solves_exactly() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, NodeId::GROUND, SourceWave::Dc(2.0));
        c.resistor("R1", a, b, 1e3);
        c.resistor("R2", b, NodeId::GROUND, 1e3);
        let layout = MnaLayout::new(&c);
        let mut mat = Matrix::square(layout.size());
        let mut rhs = vec![0.0; layout.size()];
        let x = vec![0.0; layout.size()];
        let params = AssembleParams {
            t: 0.0,
            externals: &[],
            gmin: 0.0,
            source_scale: 1.0,
        };
        assemble(
            &c,
            &layout,
            &x,
            AssembleMode::Dc,
            &params,
            &mut mat,
            &mut rhs,
        )
        .unwrap();
        let mut sol = rhs.clone();
        mat.solve_in_place(&mut sol).unwrap();
        assert!((layout.voltage(&sol, a) - 2.0).abs() < 1e-12);
        assert!((layout.voltage(&sol, b) - 1.0).abs() < 1e-12);
        // Branch current: 2 V across 2 kΩ = 1 mA flowing out of the source's
        // positive terminal into the circuit → branch current is −1 mA with
        // the p→n-through-source convention.
        let ib = sol[layout.branch_unknown(0).unwrap()];
        assert!((ib + 1e-3).abs() < 1e-12, "ib = {ib}");
    }

    #[test]
    fn current_controlled_sources_solve_spice_conventions() {
        // V1 drives 2 V across 1 kΩ: i(V1) = −2 mA with the
        // p→n-through-source convention. F doubles it into R2 (+4 V),
        // H converts it to −0.1 V through rm = 50 Ω.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let d = c.node("d");
        c.vsource("V1", a, NodeId::GROUND, SourceWave::Dc(2.0));
        c.resistor("R1", a, NodeId::GROUND, 1e3);
        c.cccs("F1", b, NodeId::GROUND, "V1", 2.0).unwrap();
        c.resistor("R2", b, NodeId::GROUND, 1e3);
        c.ccvs("H1", d, NodeId::GROUND, "V1", 50.0).unwrap();
        let op = crate::dcop::dcop(&c).unwrap();
        assert!(
            (op.voltage(b) - 4.0).abs() < 1e-6,
            "v(b) = {}",
            op.voltage(b)
        );
        assert!(
            (op.voltage(d) + 0.1).abs() < 1e-6,
            "v(d) = {}",
            op.voltage(d)
        );
        let layout = MnaLayout::new(&c);
        // V1 and H1 carry branches; F1 does not.
        assert!(layout.branch_unknown(0).is_some());
        assert!(layout.branch_unknown(2).is_none());
        assert!(layout.branch_unknown(4).is_some());
    }

    #[test]
    fn switch_conductance_transitions_smoothly() {
        let g_off = switch_conductance(0.0, 100.0, 1e9, 0.9, 0.1);
        let g_on = switch_conductance(1.8, 100.0, 1e9, 0.9, 0.1);
        assert!((g_on - 1.0 / 100.0).abs() / g_on < 1e-2);
        assert!(g_off < 2e-9);
        let g_mid = switch_conductance(0.9, 100.0, 1e9, 0.9, 0.1);
        assert!(g_off < g_mid && g_mid < g_on);
    }

    #[test]
    fn isource_direction_matches_spice_convention() {
        // I1 from node a to ground pulls a negative.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.isource("I1", a, NodeId::GROUND, SourceWave::Dc(1e-3));
        c.resistor("R1", a, NodeId::GROUND, 1e3);
        let layout = MnaLayout::new(&c);
        let mut mat = Matrix::square(layout.size());
        let mut rhs = vec![0.0; layout.size()];
        let params = AssembleParams {
            t: 0.0,
            externals: &[],
            gmin: 0.0,
            source_scale: 1.0,
        };
        assemble(
            &c,
            &layout,
            &[0.0],
            AssembleMode::Dc,
            &params,
            &mut mat,
            &mut rhs,
        )
        .unwrap();
        let mut sol = rhs.clone();
        mat.solve_in_place(&mut sol).unwrap();
        assert!((layout.voltage(&sol, a) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn dc_pattern_is_gmin_free_and_labels_unknowns() {
        // V1 drives a divider; node x hangs off a capacitor only — the
        // assembled matrix has a gmin diagonal at x, but the structural
        // DC pattern must leave row/column x empty.
        let mut c = Circuit::new();
        let a = c.node("a");
        let x = c.node("x");
        c.vsource("V1", a, NodeId::GROUND, SourceWave::Dc(1.0));
        c.resistor("R1", a, NodeId::GROUND, 1e3);
        c.capacitor("C1", a, x, 1e-12);
        let layout = MnaLayout::new(&c);
        let pat = dc_pattern(&c, &layout).unwrap();
        let ux = layout.node_unknown(x).unwrap();
        assert!(
            pat.iter().all(|&(r, cc)| r != ux && cc != ux),
            "capacitor-only node must have an empty structural row/column"
        );
        let ua = layout.node_unknown(a).unwrap();
        assert!(pat.contains(&(ua, ua)), "resistor diagonal present");
        // Labels: node unknowns then branch currents.
        assert_eq!(layout.unknown_of(ua), Some(MnaUnknown::NodeVoltage(a)));
        let ib = layout.branch_unknown(0).unwrap();
        assert_eq!(layout.unknown_of(ib), Some(MnaUnknown::BranchCurrent(0)));
        assert_eq!(layout.unknown_of(layout.size() + 7), None);
    }
}
