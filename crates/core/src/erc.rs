//! Pre-simulation ERC gate: every flow phase is statically checked before
//! any solver runs.
//!
//! The paper's methodology leans on catching topology mistakes *early* —
//! a voltage-source loop that would surface as an opaque
//! `SingularMatrixError` three phases later is cheap to reject while the
//! design is still a netlist. This module wires the [`lint`] analyzer into
//! [`TopDownFlow`](crate::flow::TopDownFlow):
//!
//! * [`ErcConfig`] — gate policy: enabled/disabled and the severity that
//!   denies a run (the `--no-erc` escape hatch maps to [`ErcConfig::disabled`]),
//! * [`FlowError`] — the flow's error type, carrying either a full ERC
//!   [`Report`] or the downstream [`ReceiveError`],
//! * [`phase_block_graph`] — the architectural partition of the paper's
//!   receiver (Figure 3) as a lintable [`BlockGraph`],
//! * [`phase_report`] — the checks a given phase must pass,
//! * [`checked_transient`] — lint-then-simulate for ad-hoc circuits.

use crate::flow::Phase;
use lint::{lint_circuit, BlockGraph, PortKind, Report, Severity};
use spice::circuit::Circuit;
use spice::tran::{TranOptions, TransientSimulator};
use uwb_txrx::receiver::ReceiveError;

/// Policy for the pre-simulation ERC gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErcConfig {
    /// Run the checks at all. `false` is the `--no-erc` escape hatch.
    pub enabled: bool,
    /// Findings at or above this severity deny the run.
    pub deny: Severity,
}

impl Default for ErcConfig {
    fn default() -> Self {
        ErcConfig {
            enabled: true,
            deny: Severity::Error,
        }
    }
}

impl ErcConfig {
    /// The `--no-erc` escape hatch: checks are skipped entirely.
    pub fn disabled() -> Self {
        ErcConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// A stricter gate that also denies on warnings.
    pub fn deny_warnings() -> Self {
        ErcConfig {
            enabled: true,
            deny: Severity::Warning,
        }
    }

    /// Parses command-line style arguments, consuming the flags this gate
    /// understands (`--no-erc`, `--erc-strict`) and returning the rest.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> (Self, Vec<String>) {
        let mut cfg = ErcConfig::default();
        let rest = args
            .into_iter()
            .filter(|a| match a.as_str() {
                "--no-erc" => {
                    cfg.enabled = false;
                    false
                }
                "--erc-strict" => {
                    cfg.deny = Severity::Warning;
                    false
                }
                _ => true,
            })
            .collect();
        (cfg, rest)
    }

    /// Applies the policy to a finished report: `Err` when the gate denies.
    ///
    /// # Errors
    ///
    /// [`FlowError::Erc`] when enabled and any finding reaches the deny
    /// severity.
    pub fn gate(&self, phase: Phase, report: Report) -> Result<Report, FlowError> {
        if self.enabled && report.worst().is_some_and(|w| w >= self.deny) {
            Err(FlowError::Erc { phase, report })
        } else {
            Ok(report)
        }
    }
}

/// Why a flow phase did not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The static ERC gate denied the phase before any solver ran.
    Erc {
        /// The phase that was denied.
        phase: Phase,
        /// The full diagnostic report (render it for the user).
        report: Report,
    },
    /// The phase ran and reception failed downstream.
    Receive(ReceiveError),
    /// A deck failed to parse or a deck-requested analysis failed in the
    /// solver (the [`run_deck_checked`](crate::deckrun::run_deck_checked)
    /// path).
    Spice(spice::SpiceError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Erc { phase, report } => {
                write!(f, "{phase} denied by ERC gate:\n{}", report.render())
            }
            FlowError::Receive(e) => write!(f, "{e}"),
            FlowError::Spice(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Erc { .. } => None,
            FlowError::Receive(e) => Some(e),
            FlowError::Spice(e) => Some(e),
        }
    }
}

impl From<ReceiveError> for FlowError {
    fn from(e: ReceiveError) -> Self {
        FlowError::Receive(e)
    }
}

impl From<spice::SpiceError> for FlowError {
    fn from(e: spice::SpiceError) -> Self {
        FlowError::Spice(e)
    }
}

/// The architectural partition the paper's Phases II–IV all share (the
/// receiver side of Figure 3), as a lintable block graph: LNA → squarer →
/// Integrate & Dump → ADC → synchroniser, with the sync closing the dump
/// control loop through the stateful I&D.
pub fn phase_block_graph(phase: Phase) -> BlockGraph {
    BlockGraph::new(format!("{phase} receiver partition"))
        .block(
            "lna",
            vec![("rf_in", PortKind::Voltage)],
            vec![("rf_amp", PortKind::Voltage)],
            false,
        )
        .block(
            "squarer",
            vec![("rf_amp", PortKind::Voltage)],
            vec![("i_sq", PortKind::Current)],
            false,
        )
        .block(
            "integrate_dump",
            vec![("i_sq", PortKind::Current), ("ctl_dump", PortKind::Digital)],
            vec![("v_int", PortKind::Voltage)],
            true,
        )
        .block(
            "adc",
            vec![("v_int", PortKind::Voltage)],
            vec![("code", PortKind::Digital)],
            true,
        )
        .block(
            "sync",
            vec![("code", PortKind::Digital)],
            vec![("ctl_dump", PortKind::Digital), ("bits", PortKind::Digital)],
            true,
        )
        .external("rf_in")
}

/// Runs every static check a phase must pass, without applying any policy.
///
/// * **Phase I** is the unpartitioned behavioural entity — there is no
///   structure to lint, so its report is empty.
/// * **Phases II and IV** lint the architectural partition.
/// * **Phase III** additionally lints the transistor-level I&D testbench
///   netlist that will be substituted into the loop.
pub fn phase_report(phase: Phase) -> Report {
    let mut report = Report::new(format!("{phase} pre-simulation ERC"));
    if phase == Phase::I {
        return report;
    }
    report.extend(lint::lint_graph(&phase_block_graph(phase)));
    if phase == Phase::III {
        // The builtin parameter set is statically well-formed; a failure
        // here would be a workspace bug, not a user input.
        let bench = spice::library::integrate_dump_testbench(&Default::default())
            .expect("builtin I&D testbench is well-formed");
        report.extend(lint_circuit(&bench.circuit, "integrate_dump testbench"));
    }
    report
}

/// Convenience gate used by [`TopDownFlow`](crate::flow::TopDownFlow):
/// runs [`phase_report`] and applies `cfg`.
///
/// # Errors
///
/// [`FlowError::Erc`] when the gate denies the phase.
pub fn check_phase(phase: Phase, cfg: &ErcConfig) -> Result<Report, FlowError> {
    if !cfg.enabled {
        return Ok(Report::new(format!("{phase} (ERC skipped)")));
    }
    cfg.gate(phase, phase_report(phase))
}

/// Lints `circuit`, applies the gate, and only then constructs the
/// transient simulator — the one-call "never hand a singular topology to
/// the solver" helper.
///
/// # Errors
///
/// [`FlowError::Erc`] when the static checks deny the circuit;
/// [`FlowError::Receive`] (wrapping the solver error) when the operating
/// point itself fails.
pub fn checked_transient(
    circuit: Circuit,
    opts: TranOptions,
    externals: Vec<f64>,
    cfg: &ErcConfig,
    artefact: &str,
) -> Result<TransientSimulator, FlowError> {
    if cfg.enabled {
        cfg.gate(Phase::III, lint_circuit(&circuit, artefact))?;
    }
    TransientSimulator::with_externals(circuit, opts, externals).map_err(|e| {
        FlowError::Receive(ReceiveError::Integrator(
            uwb_txrx::integrator::IntegratorError::Circuit(e),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_graph_is_clean() {
        for phase in [Phase::II, Phase::III, Phase::IV] {
            let r = lint::lint_graph(&phase_block_graph(phase));
            assert!(r.is_clean(), "{phase}: {}", r.render());
        }
    }

    #[test]
    fn every_phase_passes_its_own_gate() {
        for phase in Phase::ALL {
            let r = check_phase(phase, &ErcConfig::default()).expect("gate passes");
            assert!(!r.has_errors(), "{}", r.render());
        }
    }

    #[test]
    fn disabled_gate_never_denies() {
        let mut report = Report::new("x");
        report.push(lint::Diagnostic::new(
            lint::LintCode::VoltageSourceLoop,
            "v1",
            "synthetic",
        ));
        assert!(ErcConfig::disabled().gate(Phase::III, report).is_ok());
    }

    #[test]
    fn strict_gate_denies_warnings() {
        let mut report = Report::new("x");
        report.push(lint::Diagnostic::new(
            lint::LintCode::UnusedModel,
            "nch",
            "synthetic",
        ));
        assert!(ErcConfig::default().gate(Phase::II, report.clone()).is_ok());
        assert!(matches!(
            ErcConfig::deny_warnings().gate(Phase::II, report),
            Err(FlowError::Erc {
                phase: Phase::II,
                ..
            })
        ));
    }

    #[test]
    fn from_args_strips_flags() {
        let (cfg, rest) =
            ErcConfig::from_args(["--no-erc", "deck.sp", "--erc-strict"].map(String::from));
        assert!(!cfg.enabled);
        assert_eq!(cfg.deny, Severity::Warning);
        assert_eq!(rest, vec!["deck.sp".to_string()]);
    }

    #[test]
    fn flow_error_renders_report() {
        let mut report = Report::new("x");
        report.push(lint::Diagnostic::new(
            lint::LintCode::VoltageSourceLoop,
            "v1",
            "synthetic",
        ));
        let e = ErcConfig::default().gate(Phase::III, report).unwrap_err();
        let s = e.to_string();
        assert!(s.contains("Phase III") && s.contains("E0103"), "{s}");
    }
}
