#![cfg(feature = "proptests")]
// Gated behind the opt-in `proptests` feature: the offline build
// environment cannot fetch the `proptest` crate. Enable with
// `cargo test --features proptests` after vendoring proptest.

//! Property-based tests for the methodology engine.

use proptest::prelude::*;
use uwb_ams_core::calibrate::fit_two_pole;
use uwb_ams_core::plan::RefinementPlan;
use uwb_ams_core::report::{Series, Table};
use uwb_ams_core::substitute::{BlockInterface, PortKind, PortSpec};
use uwb_txrx::integrator::Fidelity;

fn two_pole_db(gain_db: f64, f1: f64, f2: f64, f: f64) -> f64 {
    gain_db - 10.0 * (1.0 + (f / f1).powi(2)).log10() - 10.0 * (1.0 + (f / f2).powi(2)).log10()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Phase IV fitter recovers randomly-drawn two-pole responses.
    #[test]
    fn fit_recovers_random_two_pole(
        gain_db in 5.0f64..35.0,
        f1_exp in 5.0f64..6.8,
        sep in 2.0f64..4.0, // decades between the poles
    ) {
        let f1 = 10f64.powf(f1_exp);
        let f2 = f1 * 10f64.powf(sep);
        let freqs: Vec<f64> = (0..=140)
            .map(|i| 1e4 * 10f64.powf(7.0 * i as f64 / 140.0))
            .collect();
        let mag: Vec<f64> = freqs.iter().map(|&f| two_pole_db(gain_db, f1, f2, f)).collect();
        let fit = fit_two_pole(&freqs, &mag);
        prop_assert!((fit.gain_db - gain_db).abs() < 0.5, "gain {} vs {}", fit.gain_db, gain_db);
        prop_assert!((fit.f_pole1 / f1).ln().abs() < 0.15, "f1 {} vs {}", fit.f_pole1, f1);
        prop_assert!((fit.f_pole2 / f2).ln().abs() < 0.3, "f2 {} vs {}", fit.f_pole2, f2);
        prop_assert!(fit.rms_error_db < 0.5);
    }

    /// Interface compatibility is symmetric and reflexive under shuffles.
    #[test]
    fn interface_compatibility_is_order_insensitive(perm in prop::sample::subsequence(
        vec![0usize, 1, 2, 3, 4], 5)
    ) {
        let kinds = [
            PortKind::AnalogIn,
            PortKind::AnalogOut,
            PortKind::DigitalIn,
            PortKind::DigitalOut,
            PortKind::Supply,
        ];
        let base = BlockInterface::new(
            "blk",
            (0..5).map(|i| PortSpec::new(&format!("p{i}"), kinds[i])).collect(),
        );
        // Any permutation of the same port set stays compatible both ways.
        let mut order: Vec<usize> = perm.clone();
        for i in 0..5 {
            if !order.contains(&i) {
                order.push(i);
            }
        }
        let shuffled = BlockInterface::new(
            "blk2",
            order.iter().map(|&i| PortSpec::new(&format!("p{i}"), kinds[i])).collect(),
        );
        prop_assert!(base.compatible_with(&shuffled).is_ok());
        prop_assert!(shuffled.compatible_with(&base).is_ok());
    }

    /// Refinement plans: setting any subset of blocks to any fidelities,
    /// the census always sums to the block count, and the completion
    /// sequence always ends with no ideal blocks while never holding two
    /// netlists at once.
    #[test]
    fn plan_invariants(assignments in prop::collection::vec(0u8..3, 8)) {
        let mut plan = RefinementPlan::all_ideal("random");
        for (block, &a) in uwb_ams_core::plan::BLOCKS.iter().zip(&assignments) {
            let f = match a {
                0 => Fidelity::Ideal,
                1 => Fidelity::Behavioral,
                _ => Fidelity::Circuit,
            };
            plan.set(block, f);
        }
        let (i, b, c) = plan.census();
        prop_assert_eq!(i + b + c, 8);
        // Completion from the behavioural-ised plan (clear extra netlists
        // first, as the discipline demands).
        let mut start = plan.clone();
        for (block, f) in plan.iter().map(|(b, f)| (b.to_string(), f)).collect::<Vec<_>>() {
            if f == Fidelity::Circuit {
                start.set(&block, Fidelity::Behavioral);
            }
        }
        for step in start.completion_sequence() {
            prop_assert!(step.obeys_single_netlist_rule());
        }
    }

    /// Tables render every row and CSV round-trips the cell count.
    #[test]
    fn table_rendering_is_total(rows in prop::collection::vec(
        prop::collection::vec("[a-z0-9]{1,8}", 3..4), 0..6)
    ) {
        let mut t = Table::new("t", &["a", "b", "c"]);
        for r in &rows {
            t.push_row(r.clone());
        }
        let text = t.to_string();
        for r in &rows {
            for cell in r {
                prop_assert!(text.contains(cell.as_str()));
            }
        }
        let csv = t.to_csv();
        prop_assert_eq!(csv.lines().count(), rows.len() + 1);
    }

    /// Series CSV merging keeps x-grid length and column counts coherent.
    #[test]
    fn series_merge_is_shape_stable(n in 1usize..20, k in 1usize..4) {
        let series: Vec<Series> = (0..k)
            .map(|j| {
                Series::new(
                    &format!("s{j}"),
                    (0..n).map(|i| (i as f64, (i * j) as f64)).collect(),
                )
            })
            .collect();
        let refs: Vec<&Series> = series.iter().collect();
        let csv = Series::merge_csv(&refs);
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        prop_assert_eq!(header.split(',').count(), k + 1);
        prop_assert_eq!(lines.count(), n);
    }
}
