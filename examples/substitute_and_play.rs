//! Figure 5: integrate / hold / dump transients of the three I&D
//! fidelities, swapped through one interface-checked block slot.
//!
//! A squared-UWB-like burst is integrated, held (quiet input, control still
//! high — the natural hold of the paper's two-rail control), then dumped.
//! The VHDL-AMS model tracks the circuit closely but misses the distortion
//! caused by the limited linear input range — exactly the mismatch the
//! paper uses to argue for Phase IV model refinement.
//!
//! ```sh
//! cargo run --release --example substitute_and_play
//! ```

use ams_kernel::trace::{probes_to_csv, Probe};
use uwb_ams_core::substitute::{integrate_dump_interface, BlockSlot};
use uwb_txrx::integrator::{
    BehavioralIntegrator, CircuitIntegrator, Fidelity, IdealIntegrator, IntegratorBlock,
};

/// Squared-UWB-ish burst, deliberately large enough to push the circuit
/// beyond its measured ≈0.5 V linear input range so the Figure 5 mismatch
/// (two-pole model vs real transistors) becomes visible.
fn burst(t: f64) -> f64 {
    if !(5e-9..=25e-9).contains(&t) {
        return 0.0;
    }
    let u = (t - 5e-9) / 20e-9;
    let envelope = (std::f64::consts::PI * u).sin().powi(2);
    0.90 * envelope
}

fn run(
    label: &str,
    mut intg: Box<dyn IntegratorBlock>,
) -> Result<Probe, Box<dyn std::error::Error>> {
    let dt = 50e-12;
    let mut probe = Probe::new(label);
    let steps = (80e-9 / dt) as usize;
    for i in 0..steps {
        let t = i as f64 * dt;
        // Integrate for 50 ns (burst then hold), dump afterwards.
        intg.set_control(t < 50e-9);
        let v = intg.step(dt, burst(t))?;
        probe.push(t, v);
    }
    Ok(probe)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The slot accepts each implementation because all three expose the
    // same electrical interface (Figure 3's port list).
    let iface = integrate_dump_interface();
    let initial: Box<dyn IntegratorBlock> = Box::new(IdealIntegrator::default());
    let mut slot = BlockSlot::new(iface.clone(), initial, iface.clone())?;

    let ideal = run(
        "ideal",
        slot.substitute(Box::new(IdealIntegrator::default()), iface.clone())?,
    )
    .map_err(|e| format!("ideal: {e}"))?;
    let _ = slot.substitute(
        Box::new(BehavioralIntegrator::with_input_clip()),
        iface.clone(),
    )?;
    println!("slot now holds: {}", slot.get().fidelity());
    let model = run(
        "vhdl_ams_model",
        Box::new(BehavioralIntegrator::from_default_calibration()),
    )?;
    let circuit = run(
        "eldo_circuit",
        Box::new(CircuitIntegrator::with_defaults().map_err(|e| format!("op: {e}"))?),
    )?;

    println!(
        "\n{:>10} {:>10} {:>12} {:>12}",
        "t (ns)", "ideal", "model", "circuit"
    );
    for i in (0..ideal.len()).step_by(100) {
        println!(
            "{:>10.2} {:>10.4} {:>12.4} {:>12.4}",
            ideal.times()[i] * 1e9,
            ideal.values()[i],
            model.values()[i],
            circuit.values()[i]
        );
    }

    let peak_i = ideal.max().unwrap_or(0.0);
    let peak_m = model.max().unwrap_or(0.0);
    let peak_c = circuit.max().unwrap_or(0.0);
    println!("\npeaks: ideal {peak_i:.4} V, model {peak_m:.4} V, circuit {peak_c:.4} V");
    println!(
        "model-vs-circuit mismatch {:.1} % (the paper attributes it to the\n\
         limited linear input range missing from the two-pole model)",
        100.0 * (peak_m - peak_c).abs() / peak_c.abs().max(1e-12)
    );
    assert_eq!(slot.get().fidelity(), Fidelity::Behavioral);

    std::fs::write(
        "fig5_transient.csv",
        probes_to_csv(&[&ideal, &model, &circuit]),
    )?;
    println!("Wrote fig5_transient.csv");
    Ok(())
}
