//! # uwb-phy — UWB physical-layer substrate
//!
//! Impulse-radio building blocks for the 2-PPM energy-detection
//! transceiver: [`pulse`] shapes, [`modulation`] (2-PPM symbols and the
//! preamble+payload packet structure), the IEEE 802.15.4a statistical
//! [`channel`] models (CM1–CM4 with path loss and propagation delay),
//! calibrated [`noise`], closed-form and Monte-Carlo [`ber`] references,
//! and Two-Way-Ranging [`ranging`] math.
//!
//! ## Example: one packet over CM1 at 5 m
//!
//! ```
//! use rand::SeedableRng;
//! use uwb_phy::channel::{realize, Tg4aModel};
//! use uwb_phy::modulation::{modulate, Packet, PpmConfig};
//!
//! let cfg = PpmConfig::default();
//! let pkt = Packet::new(8, vec![true, false, true]);
//! let tx = modulate(&pkt, &cfg);
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let ch = realize(Tg4aModel::Cm1, 5.0, &mut rng);
//! let rx = ch.apply(&tx);
//! assert!(rx.energy() < tx.energy()); // path loss
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ber;
pub mod channel;
pub mod constraints;
pub mod localization;
pub mod modulation;
pub mod noise;
pub mod pulse;
pub mod ranging;
pub mod spectrum;
pub mod waveform;

pub use channel::{ChannelRealization, Tg4aModel, SPEED_OF_LIGHT};
pub use modulation::{Packet, PpmConfig};
pub use noise::Awgn;
pub use pulse::PulseShape;
pub use waveform::Waveform;
