//! The paper's Figure 3: fully differential current-mode CMOS
//! Integrate & Dump cell.
//!
//! Structure (31 transistors):
//!
//! * **two auto-biasing networks** — resistor-referenced stacked-diode legs
//!   generating the NMOS tail reference and the PMOS current-source
//!   reference (4 devices),
//! * **transconductance amplifier** — per side, a low-Vt source-follower
//!   input device whose current is sensed by a diode and *mirrored with
//!   ratio ≈ 2 into the output stage* (no output cascode, preserving the
//!   1.6 V swing the paper quotes), with auxiliary standing-current sinks
//!   (10 devices),
//! * **CMFB network** — source-follower sensors on the two high-impedance
//!   output nodes, a matched reference shifter and a five-transistor error
//!   amplifier steering the PMOS loads (11 devices),
//! * **integration switches** — two transmission gates connecting the OTA
//!   outputs to the 1 pF integration capacitor plus one reset transmission
//!   gate across it (6 devices).
//!
//! Control semantics, as in the paper: `Controlp` high / `Controlm` low
//! integrates (and naturally *holds* whenever the rectified UWB input is
//! quiet); `Controlp` low / `Controlm` high dumps the accumulated charge.

use crate::circuit::{Circuit, NodeId, SourceWave};
use crate::error::SpiceError;
use crate::mosfet::MosParams;

/// Geometry and value parameters of the I&D cell.
///
/// Defaults are tuned so the AC response approximates the paper's Figure 4:
/// ~21 dB DC gain, first pole below 1 MHz, integrator behaviour through
/// 10 MHz–1 GHz, second pole in the GHz range.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrateDumpParams {
    /// Supply voltage, V.
    pub vdd: f64,
    /// Integration capacitor across the differential outputs, F.
    pub c_int: f64,
    /// Bias-leg resistors, Ω.
    pub r_bias: f64,
    /// Input source-follower W, m (the paper's aspect-ratio-20 devices).
    pub w_sf: f64,
    /// Diode current-sensor W, m.
    pub w_diode: f64,
    /// Output mirror W, m (ratio ≈ 2 × diode for bandwidth).
    pub w_mirror: f64,
    /// PMOS load W, m.
    pub w_load: f64,
    /// Shared channel length of the core devices, m.
    pub l_core: f64,
    /// Switch transistor W, m.
    pub w_switch: f64,
    /// CMFB loop compensation capacitor, F.
    pub c_cmfb: f64,
    /// Output common-mode target as a fraction of `vdd`.
    pub vcm_frac: f64,
}

impl Default for IntegrateDumpParams {
    fn default() -> Self {
        // Calibrated against the paper's Figure 4: DC gain ≈ 24 dB
        // (paper: 21 dB), first pole ≈ 0.887 MHz (paper: 0.886 MHz),
        // −20 dB/dec through 10 MHz–1 GHz, second pole in the GHz range.
        IntegrateDumpParams {
            vdd: 1.8,
            c_int: 1e-12,
            r_bias: 150e3,
            w_sf: 2e-6,
            w_diode: 1.4e-6,
            w_mirror: 2.8e-6,
            w_load: 24e-6,
            l_core: 0.61e-6,
            w_switch: 8e-6,
            c_cmfb: 2e-12,
            vcm_frac: 0.5,
        }
    }
}

/// Interface nodes of an instantiated I&D cell (Figure 3's port list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrateDumpPorts {
    /// Positive analog input.
    pub inp: NodeId,
    /// Negative analog input.
    pub inm: NodeId,
    /// Integration control (high = integrate).
    pub controlp: NodeId,
    /// Dump control (high = dump).
    pub controlm: NodeId,
    /// Positive integrated output (capacitor plate).
    pub out_intp: NodeId,
    /// Negative integrated output (capacitor plate).
    pub out_intm: NodeId,
    /// Supply node.
    pub vdd: NodeId,
}

/// Instantiates the I&D cell into `ckt`; node names are prefixed with
/// `prefix` so several instances can coexist.
///
/// The caller is responsible for driving `vdd`, both inputs and both
/// control rails (see [`integrate_dump_testbench`] for a self-contained
/// bench).
///
/// # Errors
///
/// [`SpiceError::InvalidParameter`] when a geometry parameter makes a
/// device unbuildable (e.g. non-positive `w_sf`); the first offending
/// device is named in the error.
pub fn integrate_dump(
    ckt: &mut Circuit,
    prefix: &str,
    params: &IntegrateDumpParams,
) -> Result<IntegrateDumpPorts, SpiceError> {
    let p = params;
    let gnd = Circuit::gnd();
    let n = |ckt: &mut Circuit, s: &str| ckt.node(&format!("{prefix}{s}"));

    // Models (idempotent to register repeatedly: lookups are by name and
    // the first match wins, so register only if absent).
    for (name, model) in [
        ("id_nch", MosParams::nmos_018()),
        ("id_pch", MosParams::pmos_018()),
        ("id_nlv", MosParams::nmos_lv_018()),
        ("id_plv", MosParams::pmos_lv_018()),
    ] {
        if ckt.find_model(name).is_none() {
            ckt.add_model(name, model);
        }
    }

    let vdd = n(ckt, "vdd");
    let inp = n(ckt, "inp");
    let inm = n(ckt, "inm");
    let ctlp = n(ckt, "controlp");
    let ctlm = n(ckt, "controlm");
    let outp = n(ckt, "out_intp");
    let outm = n(ckt, "out_intm");

    // Collect the first device-construction failure instead of panicking;
    // the whole builder reports it once all wiring code has run.
    let mut first_err: Option<SpiceError> = None;
    let mut m = |ckt: &mut Circuit, name: &str, d, g, s, b, model: &str, w: f64, l: f64| {
        if first_err.is_some() {
            return;
        }
        // Geometry sanity lives here, not in `Circuit::mosfet`: the builder
        // must stay permissive so the static ERC layer (lint E0107) can see
        // and report non-physical devices on a *constructed* circuit.
        if !(w.is_finite() && w > 0.0 && l.is_finite() && l > 0.0) {
            first_err = Some(SpiceError::InvalidParameter {
                element: format!("{prefix}{name}"),
                message: format!("W/L must be positive and finite (got W={w:.3e}, L={l:.3e})"),
            });
            return;
        }
        if let Err(e) = ckt.mosfet(&format!("{prefix}{name}"), d, g, s, b, model, w, l) {
            first_err = Some(e);
        }
    };

    // ---- Bias network 1: NMOS reference (stacked diodes from a resistor).
    let nb1 = n(ckt, "nb1");
    let nb2 = n(ckt, "nb2"); // = Vbias1 (tail/sink gate)
    ckt.resistor(&format!("{prefix}RB1"), vdd, nb1, p.r_bias);
    m(ckt, "MB1", nb1, nb1, nb2, gnd, "id_nch", 10e-6, 1e-6);
    m(ckt, "MB2", nb2, nb2, gnd, gnd, "id_nch", 10e-6, 1e-6);

    // ---- Bias network 2: PMOS reference. pb2 = Vbias2 (PMOS source gate).
    let pb1 = n(ckt, "pb1");
    let pb2 = n(ckt, "pb2");
    ckt.resistor(&format!("{prefix}RB2"), pb1, gnd, p.r_bias);
    m(ckt, "MB3", pb1, pb1, pb2, vdd, "id_pch", 20e-6, 1e-6);
    m(ckt, "MB4", pb2, pb2, vdd, vdd, "id_pch", 20e-6, 1e-6);

    // ---- Transconductance amplifier, side A (input inp → output ota_m).
    let vcmfb = n(ckt, "vcmfb");
    let sfa = n(ckt, "sfa");
    let ota_m = n(ckt, "ota_m");
    m(ckt, "M1", vdd, inp, sfa, gnd, "id_nlv", p.w_sf, p.l_core);
    m(ckt, "M2", sfa, sfa, gnd, gnd, "id_nlv", p.w_diode, p.l_core);
    m(ckt, "M9", sfa, nb2, gnd, gnd, "id_nch", 4e-6, 2e-6);
    m(
        ckt, "M3", ota_m, sfa, gnd, gnd, "id_nlv", p.w_mirror, p.l_core,
    );
    m(ckt, "M4", ota_m, vcmfb, vdd, vdd, "id_pch", p.w_load, 1e-6);

    // ---- Side B (input inm → output ota_p).
    let sfb = n(ckt, "sfb");
    let ota_p = n(ckt, "ota_p");
    m(ckt, "M5", vdd, inm, sfb, gnd, "id_nlv", p.w_sf, p.l_core);
    m(ckt, "M6", sfb, sfb, gnd, gnd, "id_nlv", p.w_diode, p.l_core);
    m(ckt, "M10", sfb, nb2, gnd, gnd, "id_nch", 4e-6, 2e-6);
    m(
        ckt, "M7", ota_p, sfb, gnd, gnd, "id_nlv", p.w_mirror, p.l_core,
    );
    m(ckt, "M8", ota_p, vcmfb, vdd, vdd, "id_pch", p.w_load, 1e-6);

    // ---- CMFB: PMOS source-follower sensors on the floating OTA outputs.
    let sen_p = n(ckt, "sen_p");
    let sen_m = n(ckt, "sen_m");
    let vcm = n(ckt, "vcm");
    m(ckt, "MS1C", sen_p, pb2, vdd, vdd, "id_pch", 8e-6, 1e-6);
    m(ckt, "MS1", gnd, ota_p, sen_p, vdd, "id_plv", 8e-6, 1e-6);
    m(ckt, "MS2C", sen_m, pb2, vdd, vdd, "id_pch", 8e-6, 1e-6);
    m(ckt, "MS2", gnd, ota_m, sen_m, vdd, "id_plv", 8e-6, 1e-6);
    ckt.resistor(&format!("{prefix}RCM1"), sen_p, vcm, 100e3);
    ckt.resistor(&format!("{prefix}RCM2"), sen_m, vcm, 100e3);

    // Matched reference shifter from a resistive divider.
    let vref0 = n(ckt, "vref0");
    let sen_r = n(ckt, "sen_r");
    let r_top = p.r_bias * (1.0 - p.vcm_frac) / p.vcm_frac;
    ckt.resistor(&format!("{prefix}RR1"), vdd, vref0, r_top.max(1.0));
    ckt.resistor(&format!("{prefix}RR2"), vref0, gnd, p.r_bias);
    m(ckt, "MS3C", sen_r, pb2, vdd, vdd, "id_pch", 8e-6, 1e-6);
    m(ckt, "MS3", gnd, vref0, sen_r, vdd, "id_plv", 8e-6, 1e-6);

    // Five-transistor error amplifier: out = vcmfb drives the PMOS loads.
    let tail = n(ckt, "cm_tail");
    let cma = n(ckt, "cma");
    m(ckt, "MC1", cma, vcm, tail, gnd, "id_nch", 8e-6, 1e-6);
    m(ckt, "MC2", vcmfb, sen_r, tail, gnd, "id_nch", 8e-6, 1e-6);
    m(ckt, "MC3", tail, nb2, gnd, gnd, "id_nch", 8e-6, 1e-6);
    m(ckt, "MC4", cma, cma, vdd, vdd, "id_pch", 8e-6, 1e-6);
    m(ckt, "MC5", vcmfb, cma, vdd, vdd, "id_pch", 8e-6, 1e-6);
    ckt.capacitor(&format!("{prefix}CCMFB"), vcmfb, gnd, p.c_cmfb);

    // ---- Integration switches: two pass TGs + one reset TG.
    m(
        ckt, "MT1", ota_p, ctlp, outp, gnd, "id_nch", p.w_switch, 0.18e-6,
    );
    m(
        ckt,
        "MT2",
        ota_p,
        ctlm,
        outp,
        vdd,
        "id_pch",
        2.0 * p.w_switch,
        0.18e-6,
    );
    m(
        ckt, "MT3", ota_m, ctlp, outm, gnd, "id_nch", p.w_switch, 0.18e-6,
    );
    m(
        ckt,
        "MT4",
        ota_m,
        ctlm,
        outm,
        vdd,
        "id_pch",
        2.0 * p.w_switch,
        0.18e-6,
    );
    m(
        ckt, "MT5", outp, ctlm, outm, gnd, "id_nch", p.w_switch, 0.18e-6,
    );
    m(
        ckt,
        "MT6",
        outp,
        ctlp,
        outm,
        vdd,
        "id_pch",
        2.0 * p.w_switch,
        0.18e-6,
    );

    // ---- Integration capacitor.
    ckt.capacitor(&format!("{prefix}CINT"), outp, outm, p.c_int);

    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(IntegrateDumpPorts {
        inp,
        inm,
        controlp: ctlp,
        controlm: ctlm,
        out_intp: outp,
        out_intm: outm,
        vdd,
    })
}

/// A self-contained I&D bench: supply, externally-driven differential
/// inputs and control rails.
#[derive(Debug, Clone)]
pub struct IntegrateDumpTestbench {
    /// The complete circuit.
    pub circuit: Circuit,
    /// Cell ports.
    pub ports: IntegrateDumpPorts,
    /// External slot driving `inp`, V.
    pub slot_inp: usize,
    /// External slot driving `inm`, V.
    pub slot_inm: usize,
    /// External slot driving `controlp` (0 / vdd).
    pub slot_controlp: usize,
    /// External slot driving `controlm` (0 / vdd).
    pub slot_controlm: usize,
    /// Common-mode voltage the inputs should ride on, V.
    pub input_cm: f64,
}

/// Builds [`IntegrateDumpTestbench`] with AC-capable differential inputs
/// (`+0.5` on `inp`, `−0.5` on `inm`, so `Voutd/Vind` is read directly).
///
/// # Errors
///
/// Propagates [`SpiceError::InvalidParameter`] from [`integrate_dump`]
/// when the supplied geometry makes a device unbuildable.
pub fn integrate_dump_testbench(
    params: &IntegrateDumpParams,
) -> Result<IntegrateDumpTestbench, SpiceError> {
    let mut ckt = Circuit::new();
    let ports = integrate_dump(&mut ckt, "id_", params)?;
    ckt.vsource("VDD", ports.vdd, Circuit::gnd(), SourceWave::Dc(params.vdd));
    // Differential inputs: external large-signal drive + AC stimulus.
    let inp_i = ckt.node("drv_inp");
    let inm_i = ckt.node("drv_inm");
    let slot_inp = ckt.external_vsource("VINP", inp_i, Circuit::gnd());
    let slot_inm = ckt.external_vsource("VINM", inm_i, Circuit::gnd());
    // AC halves in series with the external drives.
    ckt.vsource_ac("VACP", ports.inp, inp_i, SourceWave::Dc(0.0), 0.5);
    ckt.vsource_ac("VACM", ports.inm, inm_i, SourceWave::Dc(0.0), -0.5);
    let slot_controlp = ckt.external_vsource("VCTLP", ports.controlp, Circuit::gnd());
    let slot_controlm = ckt.external_vsource("VCTLM", ports.controlm, Circuit::gnd());
    Ok(IntegrateDumpTestbench {
        circuit: ckt,
        ports,
        slot_inp,
        slot_inm,
        slot_controlp,
        slot_controlm,
        input_cm: 1.05,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{ac_analysis, log_sweep};
    use crate::dcop::dcop_with;
    use crate::tran::{TranOptions, TransientSimulator};

    fn bench() -> IntegrateDumpTestbench {
        integrate_dump_testbench(&IntegrateDumpParams::default())
            .expect("builtin I&D parameters are well-formed")
    }

    /// External vector: inputs at CM, integrating.
    fn ext_integrate(tb: &IntegrateDumpTestbench) -> Vec<f64> {
        let mut v = vec![0.0; tb.circuit.num_externals];
        v[tb.slot_inp] = tb.input_cm;
        v[tb.slot_inm] = tb.input_cm;
        v[tb.slot_controlp] = 1.8;
        v[tb.slot_controlm] = 0.0;
        v
    }

    #[test]
    fn has_31_transistors() {
        let tb = bench();
        assert_eq!(tb.circuit.transistor_count(), 31);
    }

    #[test]
    fn dc_operating_point_is_sane() -> Result<(), SpiceError> {
        let tb = bench();
        let ext = ext_integrate(&tb);
        let op = dcop_with(&tb.circuit, &ext)?;
        let vop = op.voltage(tb.ports.out_intp);
        let vom = op.voltage(tb.ports.out_intm);
        // Outputs sit inside the rails and nearly balanced.
        assert!(vop > 0.2 && vop < 1.6, "out_intp = {vop}");
        assert!((vop - vom).abs() < 0.05, "balance: {vop} vs {vom}");
        Ok(())
    }

    #[test]
    fn bad_geometry_surfaces_as_invalid_parameter() {
        let params = IntegrateDumpParams {
            w_sf: -1e-6,
            ..IntegrateDumpParams::default()
        };
        match integrate_dump_testbench(&params) {
            Err(SpiceError::InvalidParameter { element, .. }) => {
                assert!(element.starts_with("id_"), "names the device: {element}");
            }
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn ac_response_is_an_integrator() {
        let tb = bench();
        let ext = ext_integrate(&tb);
        let freqs = log_sweep(10e3, 100e9, 4);
        let sweep = ac_analysis(&tb.circuit, &ext, &freqs).expect("ac");
        let g = sweep.gain_db(tb.ports.out_intp, tb.ports.out_intm);
        // DC gain in the right class (paper: 21 dB).
        assert!(g[0] > 10.0 && g[0] < 40.0, "dc gain = {} dB", g[0]);
        // −20 dB/dec through the integration band (100 MHz vs 10 MHz).
        let f10m = freqs.iter().position(|&f| f >= 10e6).unwrap();
        let f100m = freqs.iter().position(|&f| f >= 100e6).unwrap();
        let slope = g[f100m] - g[f10m];
        assert!(
            (slope + 20.0).abs() < 6.0,
            "integration-band slope/decade = {slope}"
        );
        // High-frequency rolloff steeper than a single pole (second pole).
        let tail = *g.last().unwrap();
        assert!(tail < g[f100m] - 30.0, "second pole rolls off: {tail}");
    }

    #[test]
    fn transient_integrates_and_dumps() {
        let tb = bench();
        let ext = ext_integrate(&tb);
        let mut sim =
            TransientSimulator::with_externals(tb.circuit.clone(), TranOptions::default(), ext)
                .expect("op");
        // Differential step of 60 mV: integrate for 20 ns.
        sim.set_external(tb.slot_inp, tb.input_cm + 0.03).unwrap();
        sim.set_external(tb.slot_inm, tb.input_cm - 0.03).unwrap();
        for _ in 0..400 {
            sim.step(50e-12).unwrap();
        }
        let v_int = sim.voltage_diff(tb.ports.out_intp, tb.ports.out_intm);
        assert!(v_int > 0.05, "ramped up: {v_int}");
        // Hold: zero differential input, still integrating.
        sim.set_external(tb.slot_inp, tb.input_cm).unwrap();
        sim.set_external(tb.slot_inm, tb.input_cm).unwrap();
        for _ in 0..100 {
            sim.step(50e-12).unwrap();
        }
        let v_hold = sim.voltage_diff(tb.ports.out_intp, tb.ports.out_intm);
        assert!(
            (v_hold - v_int).abs() < 0.25 * v_int.abs().max(0.05),
            "held: {v_hold} vs {v_int}"
        );
        // Dump.
        sim.set_external(tb.slot_controlp, 0.0).unwrap();
        sim.set_external(tb.slot_controlm, 1.8).unwrap();
        for _ in 0..200 {
            sim.step(50e-12).unwrap();
        }
        let v_dump = sim.voltage_diff(tb.ports.out_intp, tb.ports.out_intm);
        assert!(v_dump.abs() < 0.02, "dumped: {v_dump}");
    }
}
