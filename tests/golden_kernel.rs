//! Golden-vector regression tests for the `sim-core` kernel extraction.
//!
//! Every expected value below is the exact bit pattern (via `f64::to_bits`)
//! produced by the pre-refactor code, when `spice` and `ams-kernel` each
//! carried a private copy of the dense LU. The shared implementation must
//! reproduce those solutions bit-for-bit — through the destructive solve,
//! through cached `LuFactors` (including a second right-hand side on the
//! reuse path), through the complex AC solve, and end-to-end through the
//! Phase III transistor-level co-simulation.

use num_complex::Complex64;
use spice::linalg::{CMatrix, LuFactors, Matrix};
use uwb_txrx::integrator::IntegratorBlock;

/// The seeded 7×7 diagonally-dominant system the pre-refactor spice linalg
/// tests used (splitmix-style LCG, so the matrix is reproducible anywhere).
fn seeded_system(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut a = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            a[r * n + c] = next();
        }
        a[r * n + r] += 4.0;
    }
    let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
    (a, b)
}

/// Pre-refactor solution bits of the seeded system, identical across the
/// spice destructive solve, the spice LU path and the ams-kernel solve.
const GOLDEN_X: [u64; 7] = [
    13828049317043877850,
    13824963454499365194,
    13819862574645164456,
    4574032582313246171,
    4600655242513618005,
    4605071577805722447,
    4607069773087490972,
];

/// Pre-refactor bits for a second right-hand side (`sin i`) pushed through
/// the *cached* factors — the multi-RHS reuse path.
const GOLDEN_X_RHS2: [u64; 7] = [
    13809148021046038905,
    4596015718000586205,
    4598703554603696519,
    4587767519420957426,
    13820975425871488861,
    13821199233119688707,
    13815685361996919354,
];

/// Pre-refactor (re, im) bits of the 3×3 complex AC-style solve.
const GOLDEN_CPLX: [(u64, u64); 3] = [
    (4601733042683592655, 13824252433211510905),
    (13802207154360507640, 4603194113487757547),
    (13827853433020505212, 4600628019184621892),
];

/// Pre-refactor Phase III co-simulation outputs: 20 steps of the
/// 31-transistor circuit integrator at 50 ps driven by a slow sine.
const GOLDEN_PHASE3: [u64; 20] = [
    13637453825538260992,
    4539224284982575104,
    4546808957852639232,
    4551658153822400512,
    4554953613994686464,
    4557769078631214080,
    4559309605922265088,
    4560786397049615360,
    4562069840739048448,
    4562596480329743872,
    4562888152661062656,
    4562957235501831680,
    4562797588337639936,
    4562423434458642432,
    4561589892842067968,
    4560216220899762176,
    4558702051281628160,
    4556722233079394304,
    4553943654052493312,
    4550207575956680704,
];

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

fn spice_matrix(n: usize, a: &[f64]) -> Matrix {
    let mut m = Matrix::square(n);
    for r in 0..n {
        for c in 0..n {
            m.add(r, c, a[r * n + c]);
        }
    }
    m
}

#[test]
fn shared_lu_reproduces_pre_refactor_spice_solve() {
    let n = 7;
    let (a, b) = seeded_system(n);
    let mut m = spice_matrix(n, &a);
    let mut x = b;
    m.solve_in_place(&mut x).expect("well-conditioned system");
    assert_eq!(bits(&x), GOLDEN_X);
}

#[test]
fn shared_lu_reproduces_pre_refactor_factor_and_reuse() {
    let n = 7;
    let (a, b) = seeded_system(n);
    let m = spice_matrix(n, &a);
    let mut lu = LuFactors::new(n);
    lu.factorize(&m).expect("factorization succeeds");

    let mut x = b;
    lu.solve(&mut x);
    assert_eq!(bits(&x), GOLDEN_X, "first RHS through the factors");

    // Second right-hand side through the *same* factors: the reuse path
    // must match what a pre-refactor cached factorization produced.
    let mut x2: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    lu.solve(&mut x2);
    assert_eq!(bits(&x2), GOLDEN_X_RHS2, "second RHS reuses the factors");
}

#[test]
fn shared_lu_reproduces_pre_refactor_ams_solve() {
    let n = 7;
    let (a, b) = seeded_system(n);
    let mut dm = ams_kernel::linalg::DMatrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            dm[(r, c)] = a[r * n + c];
        }
    }
    let x = ams_kernel::linalg::solve(&dm, &b).expect("solvable");
    // The ams-kernel path and the spice path are the SAME function now;
    // the pre-refactor copies already agreed bit-for-bit, and the shared
    // kernel must keep both pinned to that answer.
    assert_eq!(bits(&x), GOLDEN_X);
}

#[test]
fn shared_lu_reproduces_pre_refactor_complex_solve() {
    let mut cm = CMatrix::zeros(3);
    let mut k = 0.5f64;
    for r in 0..3 {
        for c in 0..3 {
            k += 0.37;
            cm.add(r, c, Complex64::new(k.sin(), k.cos() * 0.3));
        }
        cm.add_re(r, r, 3.0);
    }
    let mut cb = vec![
        Complex64::new(1.0, -0.5),
        Complex64::new(0.25, 2.0),
        Complex64::new(-1.5, 0.75),
    ];
    cm.solve_in_place(&mut cb).expect("well-conditioned system");
    let got: Vec<(u64, u64)> = cb
        .iter()
        .map(|z| (z.re.to_bits(), z.im.to_bits()))
        .collect();
    assert_eq!(got, GOLDEN_CPLX);
}

#[test]
fn phase3_cosimulation_is_bit_identical_to_pre_refactor() {
    // End-to-end cross-engine check: the transistor-level integrator inside
    // the system loop (DC operating point + Newton transient, every solve
    // routed through sim-core) replays the pre-refactor trace exactly.
    let mut ci = uwb_txrx::integrator::CircuitIntegrator::with_defaults().expect("op");
    let mut trace = Vec::with_capacity(20);
    for i in 0..20 {
        let vin = 0.04 * ((i as f64) * 0.3).sin();
        let out = ci.step(50e-12, vin).expect("step");
        trace.push(out.to_bits());
    }
    assert_eq!(trace, GOLDEN_PHASE3.to_vec());
}
