//! Offline stand-in for the `num-complex` API subset this workspace uses:
//! [`Complex64`] with arithmetic, `norm`, `norm_sqr`, `arg`, `exp`, `conj`.

#![warn(missing_docs)]

use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Double-precision complex number.
pub type Complex64 = Complex<f64>;

impl Complex<f64> {
    /// Creates `re + i·im`.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The imaginary unit.
    #[inline]
    pub fn i() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex {
            re: r * self.im.cos(),
            im: r * self.im.sin(),
        }
    }

    /// Reciprocal `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex<f64> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex<f64> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex<f64> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex<f64> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        // Smith's algorithm: avoids overflow on badly scaled pivots.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex<f64> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex<f64> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex<f64> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex<f64> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex<f64> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Add<f64> for Complex<f64> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex<f64> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex<f64> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex<f64> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn add(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self + rhs.re, rhs.im)
    }
}

impl Sub<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn sub(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn mul(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self * rhs.re, self * rhs.im)
    }
}

impl Div<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn div(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self, 0.0) / rhs
    }
}

impl std::fmt::Display for Complex<f64> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(3.0, -4.0);
        let b = Complex64::new(-1.0, 2.0);
        assert_eq!(a + b, Complex64::new(2.0, -2.0));
        assert_eq!(a - b, Complex64::new(4.0, -6.0));
        assert_eq!(a * b, Complex64::new(5.0, 10.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).norm() < 1e-12);
        assert_eq!(-a, Complex64::new(-3.0, 4.0));
        assert_eq!(a.conj(), Complex64::new(3.0, 4.0));
    }

    #[test]
    fn polar_quantities() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.norm() - 5.0).abs() < 1e-15);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        let i = Complex64::i();
        assert!((i.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = Complex64::new(0.0, std::f64::consts::PI).exp();
        assert!((z.re + 1.0).abs() < 1e-12 && z.im.abs() < 1e-12, "{z}");
    }

    #[test]
    fn scalar_ops_both_sides() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, 4.0));
        assert_eq!(2.0 * z, Complex64::new(2.0, 4.0));
        assert_eq!(z + 1.0, Complex64::new(2.0, 2.0));
        let r = 1.0 / z;
        assert!((r * z - Complex64::new(1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn smith_division_handles_extreme_scales() {
        let tiny = Complex64::new(1e-200, 1e-200);
        let q = Complex64::new(1.0, 1.0) / tiny;
        assert!(q.re.is_finite() && q.im.is_finite());
        assert!(Complex64::new(f64::NAN, 0.0).norm_sqr().is_nan());
    }
}
