//! Figure 6 — BER curves with the ideal and the SPICE integrator.
//!
//! Regenerates the paper's Figure 6: BER vs Eb/N0 (0–14 dB) for the IDEAL
//! integrator and the transistor-level (ELDO) integrator inside the
//! otherwise-Phase II receiver. The paper's shape: the two curves track
//! each other, with the real integrator slightly *better* at high Eb/N0
//! (second-pole noise shaping).
//!
//! Default: 600 bits/point with the ideal + behavioural + circuit
//! fidelities; `UWB_AMS_BENCH=full` raises to 3000 bits/point.

use uwb_ams_core::metrics::BerCampaign;
use uwb_ams_core::report::Series;
use uwb_txrx::integrator::{build_integrator, Fidelity};

fn main() {
    let full = std::env::var("UWB_AMS_BENCH").as_deref() == Ok("full");
    let campaign = BerCampaign {
        bits_per_point: if full { 3000 } else { 600 },
        ..Default::default()
    };
    println!(
        "=== Figure 6: BER vs Eb/N0 ({} bits/point) ===\n",
        campaign.bits_per_point
    );

    let mut series = Vec::new();
    for f in [Fidelity::Ideal, Fidelity::Behavioral, Fidelity::Circuit] {
        let t0 = std::time::Instant::now();
        let curve = campaign
            .run(&f.to_string(), || build_integrator(f))
            .expect("campaign");
        println!("{f} ({:?}):", t0.elapsed());
        for p in &curve.points {
            println!(
                "  Eb/N0 {:>5.1} dB : BER {:.3e}  ({}/{})",
                p.ebn0_db,
                p.ber(),
                p.errors,
                p.bits
            );
        }
        series.push(curve.to_series());
    }

    // Paper-shape check: compare the fidelities at the top of the sweep.
    let last = series[0].points.len() - 1;
    let (ideal_hi, circuit_hi) = (series[0].points[last].1, series[2].points[last].1);
    println!(
        "\nat {} dB: ideal BER {:.3e}, circuit BER {:.3e} ({})",
        series[0].points[last].0,
        ideal_hi,
        circuit_hi,
        if circuit_hi <= ideal_hi {
            "circuit wins at high Eb/N0, as in the paper"
        } else {
            "ideal wins here — see EXPERIMENTS.md for the discussion"
        }
    );

    let refs: Vec<&Series> = series.iter().collect();
    let path = uwb_ams_bench::write_result("fig6_ber.csv", &Series::merge_csv(&refs));
    println!("wrote {}", path.display());
}
