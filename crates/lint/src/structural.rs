//! Structural solvability analysis (`E0301`/`E0302`) over the MNA pattern.
//!
//! The simulator's assembled Jacobian always carries a gmin diagonal, so a
//! structurally deficient netlist (a capacitor-only node, a gate nobody
//! drives through DC) still factors — to an operating point decided by the
//! gmin crutch, or to a runtime `SingularMatrixError` once gmin is swept
//! away by a homotopy. This pass analyzes the *gmin-free* DC pattern
//! ([`spice::dc_pattern`]) with a maximum bipartite matching and
//! Dulmage–Mendelsohn coarse decomposition ([`StructureReport`]) and maps
//! every unmatched equation row and unknown column back to the named node
//! or element, so the deck fails the ERC gate with a location instead of
//! failing the LU kernel with a pivot index.

use crate::{Diagnostic, LintCode, Report, SourceSpan};
use sim_core::structure::StructureReport;
use spice::circuit::Circuit;
use spice::{dc_pattern, MnaLayout, MnaUnknown};

/// `E0301` equations with no independent DC term and `E0302` unknowns no
/// equation pins, from a maximum matching over the gmin-free DC pattern.
pub(crate) fn check_structure(
    ckt: &Circuit,
    layout: &MnaLayout,
    span: &SourceSpan,
    report: &mut Report,
) {
    let n = layout.size();
    if n == 0 {
        return;
    }
    let Ok(entries) = dc_pattern(ckt, layout) else {
        // Unlayoutable circuits (dangling model refs, ...) are reported by
        // the front-end before lint runs; nothing structural to say here.
        return;
    };
    let structure = StructureReport::from_entries(n, &entries);
    if structure.is_structurally_nonsingular() {
        return;
    }

    // Unmatched rows: MNA equations (KCL at a node, or a branch's voltage
    // constraint) that no unknown can be eliminated against.
    for r in structure.unmatched_rows() {
        let diag = match layout.unknown_of(r) {
            Some(MnaUnknown::NodeVoltage(node)) => Diagnostic::new(
                LintCode::NoIndependentEquation,
                ckt.node_name(node),
                "node has no independent DC equation (nothing conducts DC current at this node; \
                 only gmin would define its bias)",
            ),
            Some(MnaUnknown::BranchCurrent(ei)) => Diagnostic::new(
                LintCode::NoIndependentEquation,
                &ckt.elements()[ei].0,
                "branch voltage constraint is not independent of the other equations at DC",
            ),
            None => Diagnostic::new(
                LintCode::NoIndependentEquation,
                format!("row {r}"),
                "MNA equation has no independent DC term",
            ),
        };
        report.push(diag.with_span(span.clone()));
    }

    // Unmatched columns: unknowns (a node voltage, a branch current) that
    // no equation determines.
    for c in structure.unmatched_cols() {
        let diag = match layout.unknown_of(c) {
            Some(MnaUnknown::NodeVoltage(node)) => Diagnostic::new(
                LintCode::UndeterminedUnknown,
                ckt.node_name(node),
                "node voltage is structurally undetermined at DC (no equation pins it)",
            ),
            Some(MnaUnknown::BranchCurrent(ei)) => Diagnostic::new(
                LintCode::UndeterminedUnknown,
                &ckt.elements()[ei].0,
                "branch current is structurally undetermined at DC (no equation pins it)",
            ),
            None => Diagnostic::new(
                LintCode::UndeterminedUnknown,
                format!("column {c}"),
                "MNA unknown is structurally undetermined at DC",
            ),
        };
        report.push(diag.with_span(span.clone()));
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_circuit;
    use crate::LintCode;
    use spice::circuit::{Circuit, SourceWave};

    #[test]
    fn capacitor_only_node_is_structurally_singular() {
        // x is biased through capacitors only: its KCL row is empty at DC
        // and nothing determines v(x) — both deficiency sides fire.
        let mut c = Circuit::new();
        let a = c.node("a");
        let x = c.node("x");
        c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(1.0));
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.capacitor("C1", a, x, 1e-12);
        c.capacitor("C2", x, Circuit::gnd(), 1e-12);
        let r = lint_circuit(&c, "structural");
        let e301: Vec<_> = r.with_code(LintCode::NoIndependentEquation).collect();
        assert_eq!(e301.len(), 1, "{}", r.render());
        assert_eq!(e301[0].subject, "x");
        assert!(
            e301[0].message.contains("no independent DC equation"),
            "{}",
            e301[0].message
        );
        let e302: Vec<_> = r.with_code(LintCode::UndeterminedUnknown).collect();
        assert_eq!(e302.len(), 1, "{}", r.render());
        assert_eq!(e302[0].subject, "x");
        assert!(r.has_errors());
    }

    #[test]
    fn parallel_voltage_sources_blame_a_branch() {
        // Two V sources across the same pair duplicate a branch row: the
        // matching leaves one branch equation and one unknown unmatched.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(1.0));
        c.vsource("V2", a, Circuit::gnd(), SourceWave::Dc(1.0));
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        let r = lint_circuit(&c, "structural");
        assert!(r.has(LintCode::NoIndependentEquation), "{}", r.render());
        let subj: Vec<_> = r
            .with_code(LintCode::NoIndependentEquation)
            .map(|d| d.subject.clone())
            .collect();
        assert!(
            subj.iter().any(|s| s == "v1" || s == "v2"),
            "a source branch is blamed: {subj:?}"
        );
    }

    #[test]
    fn structurally_sound_divider_stays_clean() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(1.0));
        c.resistor("R1", a, b, 1e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        let r = lint_circuit(&c, "structural");
        assert!(!r.has(LintCode::NoIndependentEquation), "{}", r.render());
        assert!(!r.has(LintCode::UndeterminedUnknown), "{}", r.render());
    }
}
