//! Structural (symbolic-pattern) analysis of square sparse systems.
//!
//! Everything in this module looks only at *which* matrix entries exist,
//! never at their values — the questions it answers are decided by the
//! nonzero pattern alone:
//!
//! * **Is the system structurally solvable?** A square system has a
//!   chance of being numerically nonsingular only if its bipartite
//!   row/column graph admits a *perfect matching* (every equation can
//!   claim its own unknown). [`StructureReport`] computes a maximum
//!   matching with Hopcroft–Karp and, when the matching is deficient,
//!   classifies every row and column with the coarse
//!   Dulmage–Mendelsohn decomposition ([`DmClass`]) so callers can name
//!   the over-determined equations and under-determined unknowns.
//! * **Can the factorization be decomposed?** Given a perfect matching,
//!   Tarjan's SCC algorithm on the matched digraph yields the
//!   *block-triangular form* ([`BtfForm`]): row/column permutations that
//!   expose independent diagonal blocks. [`BtfLu`] factors each block
//!   with its own [`SymbolicLu`] and solves the permuted system by block
//!   back-substitution — fill-in can never cross a block boundary.
//!
//! The analyses are deterministic: identical patterns produce identical
//! matchings, permutations and block structures on every run.

use crate::sparse::{NumericLu, RefactorOutcome, SparseMatrix, SparseScalar, SymbolicLu};
use std::collections::VecDeque;

/// Sentinel for "not matched / not reached".
const NONE: usize = usize::MAX;

/// Coarse Dulmage–Mendelsohn class of one row or column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmClass {
    /// Part of the over-determined (vertical) block: more equations than
    /// unknowns — for rows, at least one equation here is redundant.
    Over,
    /// Part of the square, perfectly-matched block.
    Square,
    /// Part of the under-determined (horizontal) block: more unknowns
    /// than equations — for columns, at least one unknown here is free.
    Under,
}

/// Result of the structural solvability analysis of an `n × n` pattern:
/// maximum bipartite matching plus the coarse Dulmage–Mendelsohn
/// classification of every row (equation) and column (unknown).
#[derive(Debug, Clone)]
pub struct StructureReport {
    n: usize,
    /// `col_of_row[r]` = column matched to row `r` (`usize::MAX` if none).
    col_of_row: Vec<usize>,
    /// `row_of_col[c]` = row matched to column `c` (`usize::MAX` if none).
    row_of_col: Vec<usize>,
    /// DM class per row.
    row_class: Vec<DmClass>,
    /// DM class per column.
    col_class: Vec<DmClass>,
    /// Size of the maximum matching.
    structural_rank: usize,
}

impl StructureReport {
    /// Analyzes an explicit entry list (duplicates allowed, order
    /// irrelevant). Entries referencing rows/columns `>= n` are ignored.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(r, c) in entries {
            if r < n && c < n {
                adj[r].push(c);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Self::from_row_adjacency(n, adj)
    }

    /// Analyzes a compiled CSC pattern (`col_ptr`/`row_idx` as produced by
    /// [`SparseMatrix`]).
    pub fn from_pattern(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Self {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in 0..n {
            for &r in &row_idx[col_ptr[c]..col_ptr[c + 1]] {
                adj[r].push(c);
            }
        }
        // CSC iteration visits columns in ascending order, so each row's
        // list is already sorted and duplicate-free.
        Self::from_row_adjacency(n, adj)
    }

    fn from_row_adjacency(n: usize, adj: Vec<Vec<usize>>) -> Self {
        let (col_of_row, row_of_col) = hopcroft_karp(n, &adj);
        let structural_rank = col_of_row.iter().filter(|&&c| c != NONE).count();
        let (row_class, col_class) = dm_coarse(n, &adj, &col_of_row, &row_of_col);
        StructureReport {
            n,
            col_of_row,
            row_of_col,
            row_class,
            col_class,
            structural_rank,
        }
    }

    /// Order of the analyzed pattern.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Size of the maximum matching (`== order` iff structurally
    /// nonsingular).
    pub fn structural_rank(&self) -> usize {
        self.structural_rank
    }

    /// `order - structural_rank`: how many equations/unknowns are left
    /// unmatched.
    pub fn deficiency(&self) -> usize {
        self.n - self.structural_rank
    }

    /// True when a perfect matching exists — a necessary (not
    /// sufficient) condition for numeric nonsingularity.
    pub fn is_structurally_nonsingular(&self) -> bool {
        self.deficiency() == 0
    }

    /// Column matched to row `r`, if any.
    pub fn matched_col(&self, r: usize) -> Option<usize> {
        match self.col_of_row[r] {
            NONE => None,
            c => Some(c),
        }
    }

    /// Row matched to column `c`, if any.
    pub fn matched_row(&self, c: usize) -> Option<usize> {
        match self.row_of_col[c] {
            NONE => None,
            r => Some(r),
        }
    }

    /// Rows (equations) left unmatched, ascending.
    pub fn unmatched_rows(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&r| self.col_of_row[r] == NONE)
            .collect()
    }

    /// Columns (unknowns) left unmatched, ascending.
    pub fn unmatched_cols(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&c| self.row_of_col[c] == NONE)
            .collect()
    }

    /// Coarse DM class of row (equation) `r`.
    pub fn row_class(&self, r: usize) -> DmClass {
        self.row_class[r]
    }

    /// Coarse DM class of column (unknown) `c`.
    pub fn col_class(&self, c: usize) -> DmClass {
        self.col_class[c]
    }

    /// Rows in the over-determined (vertical) DM part, ascending.
    pub fn over_determined_rows(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&r| self.row_class[r] == DmClass::Over)
            .collect()
    }

    /// Columns in the under-determined (horizontal) DM part, ascending.
    pub fn under_determined_cols(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&c| self.col_class[c] == DmClass::Under)
            .collect()
    }
}

/// Maximum bipartite matching (Hopcroft–Karp) between `n` rows and `n`
/// columns; `adj[r]` lists the columns with an entry in row `r`.
/// Returns (`col_of_row`, `row_of_col`) with [`NONE`] for unmatched.
fn hopcroft_karp(n: usize, adj: &[Vec<usize>]) -> (Vec<usize>, Vec<usize>) {
    let mut col_of_row = vec![NONE; n];
    let mut row_of_col = vec![NONE; n];
    let mut dist = vec![NONE; n];
    let mut queue = VecDeque::new();
    loop {
        // BFS: layer rows by shortest alternating distance from any free
        // row; stop layering past the first free column found.
        queue.clear();
        for r in 0..n {
            if col_of_row[r] == NONE {
                dist[r] = 0;
                queue.push_back(r);
            } else {
                dist[r] = NONE;
            }
        }
        let mut reachable_free_col = false;
        while let Some(r) = queue.pop_front() {
            for &c in &adj[r] {
                match row_of_col[c] {
                    NONE => reachable_free_col = true,
                    r2 => {
                        if dist[r2] == NONE {
                            dist[r2] = dist[r] + 1;
                            queue.push_back(r2);
                        }
                    }
                }
            }
        }
        if !reachable_free_col {
            break;
        }
        // DFS phase: a maximal set of vertex-disjoint shortest augmenting
        // paths, each flipped in place.
        for r in 0..n {
            if col_of_row[r] == NONE {
                augment(r, adj, &mut dist, &mut col_of_row, &mut row_of_col);
            }
        }
    }
    (col_of_row, row_of_col)
}

/// One layered-DFS augmentation attempt from free row `r`.
fn augment(
    r: usize,
    adj: &[Vec<usize>],
    dist: &mut [usize],
    col_of_row: &mut [usize],
    row_of_col: &mut [usize],
) -> bool {
    for idx in 0..adj[r].len() {
        let c = adj[r][idx];
        let extends = match row_of_col[c] {
            NONE => true,
            r2 => dist[r2] == dist[r] + 1 && augment(r2, adj, dist, col_of_row, row_of_col),
        };
        if extends {
            col_of_row[r] = c;
            row_of_col[c] = r;
            return true;
        }
    }
    dist[r] = NONE; // dead end: prune this row for the rest of the phase
    false
}

/// Coarse Dulmage–Mendelsohn classification from a maximum matching:
/// alternating-path reachability from the unmatched rows marks the
/// over-determined part, from the unmatched columns the under-determined
/// part; everything else is the square part.
fn dm_coarse(
    n: usize,
    adj: &[Vec<usize>],
    col_of_row: &[usize],
    row_of_col: &[usize],
) -> (Vec<DmClass>, Vec<DmClass>) {
    let mut row_class = vec![DmClass::Square; n];
    let mut col_class = vec![DmClass::Square; n];

    // Vertical (over-determined) part: rows reachable from free rows via
    // (row -> any incident column -> its matched row).
    let mut queue: VecDeque<usize> = (0..n).filter(|&r| col_of_row[r] == NONE).collect();
    let mut row_seen = vec![false; n];
    for &r in &queue {
        row_seen[r] = true;
    }
    while let Some(r) = queue.pop_front() {
        row_class[r] = DmClass::Over;
        for &c in &adj[r] {
            if col_class[c] == DmClass::Square {
                col_class[c] = DmClass::Over;
                let r2 = row_of_col[c];
                if r2 != NONE && !row_seen[r2] {
                    row_seen[r2] = true;
                    queue.push_back(r2);
                }
            }
        }
    }

    // Horizontal (under-determined) part: columns reachable from free
    // columns via (column -> any incident row -> its matched column).
    // Needs the transposed adjacency.
    let mut col_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, cols) in adj.iter().enumerate() {
        for &c in cols {
            col_adj[c].push(r);
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&c| row_of_col[c] == NONE).collect();
    let mut col_seen = vec![false; n];
    for &c in &queue {
        col_seen[c] = true;
    }
    while let Some(c) = queue.pop_front() {
        col_class[c] = DmClass::Under;
        for &r in &col_adj[c] {
            if row_class[r] == DmClass::Square {
                row_class[r] = DmClass::Under;
                let c2 = col_of_row[r];
                if c2 != NONE && !col_seen[c2] {
                    col_seen[c2] = true;
                    queue.push_back(c2);
                }
            }
        }
    }
    (row_class, col_class)
}

/// Block-triangular form of a structurally nonsingular pattern: row and
/// column permutations plus block boundaries such that the permuted
/// matrix is block *upper* triangular — every entry lands in a diagonal
/// block or strictly above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtfForm {
    /// `row_perm[k]` = original row placed at permuted position `k`.
    pub row_perm: Vec<usize>,
    /// `col_perm[k]` = original column placed at permuted position `k`.
    pub col_perm: Vec<usize>,
    /// Block `b` spans permuted positions `block_ptr[b] .. block_ptr[b+1]`.
    pub block_ptr: Vec<usize>,
}

impl BtfForm {
    /// Extracts the BTF of a CSC pattern. Returns `None` when the pattern
    /// has no perfect matching (structurally singular — run
    /// [`StructureReport`] for the diagnosis instead).
    pub fn from_pattern(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Option<BtfForm> {
        let report = StructureReport::from_pattern(n, col_ptr, row_idx);
        if !report.is_structurally_nonsingular() {
            return None;
        }
        // Matched digraph on columns: entry (i, v) induces edge u -> v
        // where u is the column matched to row i (self-loops dropped).
        let mut dig: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in 0..n {
            for &i in &row_idx[col_ptr[v]..col_ptr[v + 1]] {
                let u = report.col_of_row[i];
                if u != v {
                    dig[u].push(v);
                }
            }
        }
        // Tarjan emits each SCC after all SCCs it can reach; reversing the
        // emission order therefore yields a topological order of the
        // condensation, i.e. block *upper* triangular blocks.
        let mut sccs = tarjan_sccs(n, &dig);
        sccs.reverse();

        let mut col_perm = Vec::with_capacity(n);
        let mut block_ptr = Vec::with_capacity(sccs.len() + 1);
        block_ptr.push(0);
        for scc in &sccs {
            col_perm.extend_from_slice(scc);
            block_ptr.push(col_perm.len());
        }
        let row_perm: Vec<usize> = col_perm.iter().map(|&c| report.row_of_col[c]).collect();
        Some(BtfForm {
            row_perm,
            col_perm,
            block_ptr,
        })
    }

    /// Number of diagonal blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// Order of the permuted system.
    pub fn order(&self) -> usize {
        self.row_perm.len()
    }

    /// Size of the largest diagonal block.
    pub fn max_block(&self) -> usize {
        self.block_ptr
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }
}

/// Iterative Tarjan SCC; returns the components in emission order
/// (every SCC after all SCCs reachable from it).
fn tarjan_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut index = vec![NONE; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();

    for s in 0..n {
        if index[s] != NONE {
            continue;
        }
        call.push((s, 0));
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == NONE {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable(); // deterministic within-block order
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// One diagonal block of a [`BtfLu`]: its local matrix (re-stamped from
/// the parent values on every refactor), the pinned symbolic pattern and
/// the numeric factors.
#[derive(Debug, Clone)]
struct BtfBlock<T> {
    /// First permuted position of the block.
    start: usize,
    /// `(local_row, local_col, parent value index)` stamp sequence.
    stamps: Vec<(usize, usize, usize)>,
    mat: SparseMatrix<T>,
    sym: SymbolicLu,
    num: NumericLu<T>,
}

/// Block-triangular LU: the BTF permutation of a sparse matrix with one
/// independent [`SymbolicLu`] per diagonal block, solved by block
/// back-substitution. Produces the same solutions as a monolithic sparse
/// LU (up to rounding) while confining fill-in to the diagonal blocks.
///
/// Off-diagonal values are read from the parent matrix at solve time, so
/// callers keep assembling the *unpermuted* matrix exactly as for the
/// monolithic path; [`refactor`](Self::refactor) re-stamps each block
/// from the parent value array in O(nnz).
#[derive(Debug, Clone)]
pub struct BtfLu<T = f64> {
    form: BtfForm,
    /// Permuted position of each original row / column.
    pos_of_row: Vec<usize>,
    pos_of_col: Vec<usize>,
    blocks: Vec<BtfBlock<T>>,
    /// Off-diagonal entries `(perm_row, perm_col, parent value index)`
    /// grouped by the block that owns the row.
    offdiag: Vec<Vec<(usize, usize, usize)>>,
    /// Permuted work vector reused across solves.
    work: Vec<T>,
}

impl<T: SparseScalar> BtfLu<T> {
    /// Runs the structural analysis and factors every diagonal block.
    ///
    /// Returns `None` when the matrix is not structurally nonsingular or
    /// a diagonal block is numerically singular — callers fall back to
    /// the monolithic factorization (which reports the failure properly).
    pub fn analyze(a: &SparseMatrix<T>) -> Option<BtfLu<T>> {
        let n = a.order();
        let form = BtfForm::from_pattern(n, a.col_ptr(), a.row_idx())?;
        let mut pos_of_row = vec![0usize; n];
        let mut pos_of_col = vec![0usize; n];
        for k in 0..n {
            pos_of_row[form.row_perm[k]] = k;
            pos_of_col[form.col_perm[k]] = k;
        }
        let nb = form.num_blocks();
        let mut block_of = vec![0usize; n];
        for (b, w) in form.block_ptr.windows(2).enumerate() {
            block_of[w[0]..w[1]].fill(b);
        }
        // Route every parent entry to its diagonal block or the
        // off-diagonal list of the block owning its row.
        let mut stamps: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); nb];
        let mut offdiag: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); nb];
        for (c, &pc) in pos_of_col.iter().enumerate() {
            for p in a.col_ptr()[c]..a.col_ptr()[c + 1] {
                let r = a.row_idx()[p];
                let pr = pos_of_row[r];
                let (br, bc) = (block_of[pr], block_of[pc]);
                if br == bc {
                    let start = form.block_ptr[br];
                    stamps[br].push((pr - start, pc - start, p));
                } else {
                    debug_assert!(br < bc, "BTF permutation is not upper triangular");
                    offdiag[br].push((pr, pc, p));
                }
            }
        }
        let vals = a.values();
        let mut blocks = Vec::with_capacity(nb);
        for (b, stamps) in stamps.into_iter().enumerate() {
            let start = form.block_ptr[b];
            let size = form.block_ptr[b + 1] - start;
            let mut mat = SparseMatrix::new(size);
            mat.begin_assembly();
            for &(lr, lc, p) in &stamps {
                mat.add(lr, lc, vals[p]);
            }
            mat.finish_assembly();
            let (sym, num) = SymbolicLu::analyze(&mat).ok()?;
            blocks.push(BtfBlock {
                start,
                stamps,
                mat,
                sym,
                num,
            });
        }
        Some(BtfLu {
            form,
            pos_of_row,
            pos_of_col,
            blocks,
            offdiag,
            work: vec![T::ZERO; n],
        })
    }

    /// The underlying permutation and block structure.
    pub fn form(&self) -> &BtfForm {
        &self.form
    }

    /// Number of diagonal blocks.
    pub fn num_blocks(&self) -> usize {
        self.form.num_blocks()
    }

    /// Structural nonzeros across all block factors (L + U + diagonals).
    pub fn factor_nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.sym.factor_nnz()).sum()
    }

    /// Re-stamps every diagonal block from the parent value array and
    /// refactors it on its pinned pattern. Returns
    /// [`RefactorOutcome::Stale`] when the parent changed shape or any
    /// block's pinned pivot order degraded — re-run
    /// [`analyze`](Self::analyze) (or fall back to the monolithic path).
    pub fn refactor(&mut self, a: &SparseMatrix<T>) -> RefactorOutcome {
        if a.order() != self.form.order() {
            return RefactorOutcome::Stale;
        }
        let vals = a.values();
        for block in &mut self.blocks {
            block.mat.begin_assembly();
            for &(lr, lc, p) in &block.stamps {
                let Some(&v) = vals.get(p) else {
                    return RefactorOutcome::Stale;
                };
                block.mat.add(lr, lc, v);
            }
            if block.mat.finish_assembly() {
                // The replayed stamp sequence can never recompile; treat
                // it as staleness out of caution.
                return RefactorOutcome::Stale;
            }
            if block.sym.refactor(&block.mat, &mut block.num) == RefactorOutcome::Stale {
                return RefactorOutcome::Stale;
            }
        }
        RefactorOutcome::Refactored
    }

    /// Solves `A x = b` in place using the block factors; `a` must be the
    /// same matrix the factors were built from (its values feed the
    /// off-diagonal couplings).
    pub fn solve(&mut self, a: &SparseMatrix<T>, b: &mut [T]) {
        let n = self.form.order();
        debug_assert_eq!(b.len(), n);
        let vals = a.values();
        // Permute the RHS into block order.
        for k in 0..n {
            self.work[k] = b[self.form.row_perm[k]];
        }
        // Back-substitute blocks from last to first: by the time block b
        // is solved, every column to its right already holds x.
        for bi in (0..self.blocks.len()).rev() {
            for &(pr, pc, p) in &self.offdiag[bi] {
                let contrib = vals[p] * self.work[pc];
                self.work[pr] -= contrib;
            }
            let block = &self.blocks[bi];
            let end = block.start + block.mat.order();
            block
                .sym
                .solve(&block.num, &mut self.work[block.start..end]);
        }
        // Scatter back to original unknown order.
        for k in 0..n {
            b[self.form.col_perm[k]] = self.work[k];
        }
    }

    /// Permuted position of original row `r` (for diagnostics).
    pub fn row_position(&self, r: usize) -> usize {
        self.pos_of_row[r]
    }

    /// Permuted position of original column `c` (for diagnostics).
    pub fn col_position(&self, c: usize) -> usize {
        self.pos_of_col[c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csc_of(n: usize, entries: &[(usize, usize, f64)]) -> SparseMatrix<f64> {
        let mut m = SparseMatrix::new(n);
        m.begin_assembly();
        for &(r, c, v) in entries {
            m.add(r, c, v);
        }
        m.finish_assembly();
        m
    }

    #[test]
    fn identity_is_structurally_nonsingular_one_block_each() {
        let entries: Vec<(usize, usize)> = (0..5).map(|i| (i, i)).collect();
        let rep = StructureReport::from_entries(5, &entries);
        assert!(rep.is_structurally_nonsingular());
        assert_eq!(rep.structural_rank(), 5);
        let m = csc_of(
            5,
            &[
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (4, 4, 1.0),
            ],
        );
        let btf = BtfForm::from_pattern(5, m.col_ptr(), m.row_idx()).unwrap();
        assert_eq!(btf.num_blocks(), 5);
        assert_eq!(btf.max_block(), 1);
    }

    #[test]
    fn empty_row_and_column_are_reported() {
        // Row 2 and column 1 have no entries: deficiency 1 each side.
        let entries = [(0, 0), (1, 0), (1, 2), (0, 2)];
        let rep = StructureReport::from_entries(3, &entries);
        assert!(!rep.is_structurally_nonsingular());
        assert_eq!(rep.structural_rank(), 2);
        assert_eq!(rep.unmatched_rows(), vec![2]);
        assert_eq!(rep.unmatched_cols(), vec![1]);
        assert_eq!(rep.row_class(2), DmClass::Over);
        assert_eq!(rep.col_class(1), DmClass::Under);
    }

    #[test]
    fn duplicated_equation_is_structurally_deficient() {
        // The MNA shape of two ideal voltage sources in parallel between
        // node `a` and ground: unknowns (a, ib1, ib2), KCL row 0 sees both
        // branch currents, branch rows 1 and 2 both only see column a —
        // max matching 2 over a 3x3 system.
        let entries = [(0, 1), (0, 2), (1, 0), (2, 0)];
        let rep = StructureReport::from_entries(3, &entries);
        assert_eq!(rep.structural_rank(), 2);
        assert_eq!(rep.deficiency(), 1);
        // The two branch equations over-determine node a's voltage; one
        // branch current is left structurally free.
        let over = rep.over_determined_rows();
        assert!(over.contains(&1) && over.contains(&2), "{over:?}");
        assert_eq!(rep.over_determined_rows().len(), 2);
        let under = rep.under_determined_cols();
        assert_eq!(under.len(), 2, "{under:?}");
        assert!(rep.col_class(0) == DmClass::Over);
    }

    #[test]
    fn dm_classes_are_consistent_with_matching() {
        // Deterministic pseudo-random sparse pattern.
        let n = 24;
        let mut state = 0x9E37_79B9u64;
        let mut entries = Vec::new();
        for r in 0..n {
            for _ in 0..3 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                entries.push((r, (state >> 33) as usize % n));
            }
        }
        let rep = StructureReport::from_entries(n, &entries);
        // Matching is a bijection on the matched subsets.
        for r in 0..n {
            if let Some(c) = rep.matched_col(r) {
                assert_eq!(rep.matched_row(c), Some(r));
            }
        }
        // Square rows are matched to square columns.
        for r in 0..n {
            if rep.row_class(r) == DmClass::Square {
                let c = rep.matched_col(r).expect("square row must be matched");
                assert_eq!(rep.col_class(c), DmClass::Square);
            }
        }
        assert_eq!(
            rep.structural_rank(),
            n - rep.unmatched_rows().len(),
            "rank accounting"
        );
    }

    #[test]
    fn btf_finds_independent_blocks_and_orders_them_upper() {
        // Two independent 2x2 blocks plus a one-way coupling:
        // unknowns {0,1} feed {2,3} but not vice versa.
        let m = csc_of(
            4,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 2, 5.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 3, 4.0),
                (2, 0, 1.0), // coupling: block {2,3} depends on column 0
            ],
        );
        let btf = BtfForm::from_pattern(4, m.col_ptr(), m.row_idx()).unwrap();
        assert_eq!(btf.num_blocks(), 2);
        // Upper-triangular check: every entry's row block <= column block.
        let mut pos_r = [0; 4];
        let mut pos_c = [0; 4];
        for k in 0..4 {
            pos_r[btf.row_perm[k]] = k;
            pos_c[btf.col_perm[k]] = k;
        }
        let block_of = |k: usize| btf.block_ptr.partition_point(|&p| p <= k) - 1;
        for (c, &pc) in pos_c.iter().enumerate() {
            for &r in &m.row_idx()[m.col_ptr()[c]..m.col_ptr()[c + 1]] {
                assert!(
                    block_of(pos_r[r]) <= block_of(pc),
                    "entry ({r},{c}) below the block diagonal"
                );
            }
        }
    }

    #[test]
    fn btf_lu_matches_monolithic_solve() {
        // Three coupled blocks with deterministic values.
        let mut entries = Vec::new();
        let n = 9;
        for b in 0..3 {
            let o = 3 * b;
            for i in 0..3 {
                for j in 0..3 {
                    let v = if i == j {
                        10.0 + b as f64
                    } else {
                        1.0 / (1.0 + (i + 2 * j) as f64)
                    };
                    entries.push((o + i, o + j, v));
                }
            }
        }
        // One-way couplings: block 0 -> block 1 -> block 2 (rows of the
        // later block reference columns of the earlier one).
        entries.push((3, 1, 0.25));
        entries.push((7, 4, 0.5));
        let m = csc_of(n, &entries);

        let mut btf = BtfLu::analyze(&m).expect("structurally nonsingular");
        assert_eq!(btf.num_blocks(), 3);

        let (sym, num) = SymbolicLu::analyze(&m).expect("nonsingular");
        let b0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.0).collect();
        let mut mono = b0.clone();
        sym.solve(&num, &mut mono);
        let mut blocked = b0.clone();
        btf.solve(&m, &mut blocked);
        for (a, b) in mono.iter().zip(&blocked) {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "block solve diverged: {a} vs {b}"
            );
        }

        // Refactor with scaled values and compare again.
        let mut m2 = m.clone();
        m2.begin_assembly();
        for &(r, c, v) in &entries {
            m2.add(r, c, v * 1.5);
        }
        assert!(!m2.finish_assembly(), "same stamp sequence");
        assert_eq!(btf.refactor(&m2), RefactorOutcome::Refactored);
        let (sym2, num2) = SymbolicLu::analyze(&m2).expect("nonsingular");
        let mut mono2 = b0.clone();
        sym2.solve(&num2, &mut mono2);
        let mut blocked2 = b0;
        btf.solve(&m2, &mut blocked2);
        for (a, b) in mono2.iter().zip(&blocked2) {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "post-refactor block solve diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn btf_refuses_structurally_singular_patterns() {
        // Column 1 is empty.
        let m = csc_of(2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        assert!(BtfForm::from_pattern(2, m.col_ptr(), m.row_idx()).is_none());
        assert!(BtfLu::analyze(&m).is_none());
    }

    #[test]
    fn irreducible_pattern_is_one_block() {
        // Full 3x3: a single SCC.
        let mut entries = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                entries.push((i, j, if i == j { 3.0 } else { 1.0 }));
            }
        }
        let m = csc_of(3, &entries);
        let btf = BtfForm::from_pattern(3, m.col_ptr(), m.row_idx()).unwrap();
        assert_eq!(btf.num_blocks(), 1);
        assert_eq!(btf.max_block(), 3);
    }
}
