//! Circuit description: nodes, elements and sources.

use crate::error::SpiceError;
use crate::mosfet::MosParams;
use std::collections::HashMap;

/// A circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Time-dependent source waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWave {
    /// Constant value.
    Dc(f64),
    /// SPICE PULSE(v1 v2 delay rise fall width period).
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, s.
        delay: f64,
        /// Rise time, s.
        rise: f64,
        /// Fall time, s.
        fall: f64,
        /// Pulse width, s.
        width: f64,
        /// Repetition period, s (0 disables repetition).
        period: f64,
    },
    /// SPICE SIN(offset amplitude freq delay damping).
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency, Hz.
        freq: f64,
        /// Start delay, s.
        delay: f64,
        /// Damping factor, 1/s.
        theta: f64,
    },
    /// Piecewise-linear (time, value) points; held flat outside the span.
    Pwl(Vec<(f64, f64)>),
    /// Externally driven (co-simulation): the value is set through
    /// [`Circuit::external_vsource`] slots and the transient simulator's
    /// `set_external`.
    External {
        /// Slot index into the external-input table.
        slot: usize,
    },
}

impl SourceWave {
    /// Evaluates the waveform at time `t` given the external-input table.
    pub fn value_at(&self, t: f64, externals: &[f64]) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tl = t - delay;
                if *period > 0.0 {
                    tl %= period;
                }
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                if tl < rise {
                    v1 + (v2 - v1) * tl / rise
                } else if tl < rise + width {
                    *v2
                } else if tl < rise + width + fall {
                    v2 + (v1 - v2) * (tl - rise - width) / fall
                } else {
                    *v1
                }
            }
            SourceWave::Sin {
                offset,
                ampl,
                freq,
                delay,
                theta,
            } => {
                if t < *delay {
                    *offset
                } else {
                    let tl = t - delay;
                    offset
                        + ampl
                            * (-theta * tl).exp()
                            * (2.0 * std::f64::consts::PI * freq * tl).sin()
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                let last = points.last().expect("non-empty");
                if t >= last.0 {
                    return last.1;
                }
                let idx = points.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            SourceWave::External { slot } => externals.get(*slot).copied().unwrap_or(0.0),
        }
    }

    /// DC value used for the operating point (waveform at `t = 0`).
    pub fn dc_value(&self, externals: &[f64]) -> f64 {
        self.value_at(0.0, externals)
    }
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor.
    Resistor {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Resistance, Ω.
        r: f64,
    },
    /// Linear capacitor.
    Capacitor {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Capacitance, F.
        c: f64,
        /// Optional initial voltage for transient, V.
        ic: Option<f64>,
    },
    /// Independent voltage source (adds an MNA branch current).
    Vsource {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Large-signal waveform.
        wave: SourceWave,
        /// AC magnitude for small-signal analysis.
        ac_mag: f64,
    },
    /// Independent current source (current flows p → n through the source).
    Isource {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Large-signal waveform.
        wave: SourceWave,
        /// AC magnitude for small-signal analysis.
        ac_mag: f64,
    },
    /// Voltage-controlled voltage source `V(p,n) = gain · V(cp,cn)`.
    Vcvs {
        /// Positive output node.
        p: NodeId,
        /// Negative output node.
        n: NodeId,
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source `I(p→n) = gm · V(cp,cn)`.
    Vccs {
        /// Current exits here.
        p: NodeId,
        /// Current returns here.
        n: NodeId,
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// Transconductance, S.
        gm: f64,
    },
    /// Voltage-controlled switch: smooth conductance transition between
    /// `roff` and `ron` as `V(cp,cn)` crosses `vt` (width `vs`).
    Switch {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// On resistance, Ω.
        ron: f64,
        /// Off resistance, Ω.
        roff: f64,
        /// Switching threshold, V.
        vt: f64,
        /// Transition smoothness, V.
        vs: f64,
    },
    /// Junction diode: `I = Is·(exp(V/(n·Vt)) − 1)` with linear
    /// extrapolation above the limiting voltage (numerical safety).
    Diode {
        /// Anode.
        p: NodeId,
        /// Cathode.
        n: NodeId,
        /// Saturation current, A.
        is: f64,
        /// Emission coefficient n.
        nf: f64,
    },
    /// Linear inductor (adds an MNA branch current).
    Inductor {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Inductance, H.
        l: f64,
    },
    /// Current-controlled current source `I(p→n) = gain · i(ctrl)`, where
    /// `ctrl` is the element index of the controlling voltage source
    /// (which contributes the branch current being sensed).
    Cccs {
        /// Current exits here.
        p: NodeId,
        /// Current returns here.
        n: NodeId,
        /// Element index of the controlling voltage source.
        ctrl: usize,
        /// Current gain.
        gain: f64,
    },
    /// Current-controlled voltage source `V(p,n) = rm · i(ctrl)` (adds an
    /// MNA branch current of its own).
    Ccvs {
        /// Positive output node.
        p: NodeId,
        /// Negative output node.
        n: NodeId,
        /// Element index of the controlling voltage source.
        ctrl: usize,
        /// Transresistance, Ω.
        rm: f64,
    },
    /// MOSFET (level-1), four-terminal.
    Mosfet {
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Bulk.
        b: NodeId,
        /// Model index into [`Circuit::models`].
        model: usize,
        /// Channel width, m.
        w: f64,
        /// Channel length, m.
        l: f64,
    },
}

/// A complete circuit: named nodes, models and elements.
///
/// # Examples
///
/// ```
/// use spice::circuit::{Circuit, SourceWave};
///
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let vout = ckt.node("out");
/// ckt.vsource("V1", vin, Circuit::gnd(), SourceWave::Dc(1.0));
/// ckt.resistor("R1", vin, vout, 1e3);
/// ckt.resistor("R2", vout, Circuit::gnd(), 1e3);
/// assert_eq!(ckt.num_nodes(), 3); // ground + 2
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    elements: Vec<(String, Element)>,
    element_lookup: HashMap<String, usize>,
    /// MOS model table.
    pub models: Vec<(String, MosParams)>,
    /// Number of external-input slots declared (co-simulation).
    pub num_externals: usize,
}

impl Circuit {
    /// Creates a circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            node_lookup: HashMap::new(),
            elements: Vec::new(),
            element_lookup: HashMap::new(),
            models: Vec::new(),
            num_externals: 0,
        };
        c.node_lookup.insert("0".into(), NodeId(0));
        c.node_lookup.insert("gnd".into(), NodeId(0));
        c
    }

    /// The ground node.
    pub fn gnd() -> NodeId {
        NodeId::GROUND
    }

    /// Returns the node with this name, creating it if needed.
    /// Names are case-insensitive; `"0"` and `"gnd"` are ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.node_lookup.get(&key) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(key.clone());
        self.node_lookup.insert(key, id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_lookup.get(&name.to_ascii_lowercase()).copied()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total node count including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Iterates every node as `(id, name)`, ground first.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &str)> + '_ {
        self.node_names
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i), n.as_str()))
    }

    /// All elements with their names.
    pub fn elements(&self) -> &[(String, Element)] {
        &self.elements
    }

    /// Registers a MOS model; returns its index.
    pub fn add_model(&mut self, name: &str, params: MosParams) -> usize {
        self.models.push((name.to_ascii_lowercase(), params));
        self.models.len() - 1
    }

    /// Finds a model index by name.
    pub fn find_model(&self, name: &str) -> Option<usize> {
        let key = name.to_ascii_lowercase();
        self.models.iter().position(|(n, _)| *n == key)
    }

    pub(crate) fn push(&mut self, name: &str, e: Element) {
        let key = name.to_ascii_lowercase();
        self.element_lookup.insert(key.clone(), self.elements.len());
        self.elements.push((key, e));
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not positive and finite.
    pub fn resistor(&mut self, name: &str, p: NodeId, n: NodeId, r: f64) {
        assert!(r.is_finite() && r > 0.0, "resistance must be positive");
        self.push(name, Element::Resistor { p, n, r });
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive and finite.
    pub fn capacitor(&mut self, name: &str, p: NodeId, n: NodeId, c: f64) {
        assert!(c.is_finite() && c > 0.0, "capacitance must be positive");
        self.push(name, Element::Capacitor { p, n, c, ic: None });
    }

    /// Adds a capacitor with an initial-condition voltage (applied at the
    /// start of transient analysis; only honoured when `n` is ground).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive and finite.
    pub fn capacitor_ic(&mut self, name: &str, p: NodeId, n: NodeId, c: f64, ic: f64) {
        assert!(c.is_finite() && c > 0.0, "capacitance must be positive");
        self.push(
            name,
            Element::Capacitor {
                p,
                n,
                c,
                ic: Some(ic),
            },
        );
    }

    /// Adds an independent voltage source.
    pub fn vsource(&mut self, name: &str, p: NodeId, n: NodeId, wave: SourceWave) {
        self.push(
            name,
            Element::Vsource {
                p,
                n,
                wave,
                ac_mag: 0.0,
            },
        );
    }

    /// Adds a voltage source that also carries an AC stimulus of `ac_mag`.
    pub fn vsource_ac(&mut self, name: &str, p: NodeId, n: NodeId, wave: SourceWave, ac_mag: f64) {
        self.push(name, Element::Vsource { p, n, wave, ac_mag });
    }

    /// Adds an independent current source (current p → n).
    pub fn isource(&mut self, name: &str, p: NodeId, n: NodeId, wave: SourceWave) {
        self.push(
            name,
            Element::Isource {
                p,
                n,
                wave,
                ac_mag: 0.0,
            },
        );
    }

    /// Adds a voltage-controlled voltage source.
    pub fn vcvs(&mut self, name: &str, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gain: f64) {
        self.push(name, Element::Vcvs { p, n, cp, cn, gain });
    }

    /// Adds a voltage-controlled current source.
    pub fn vccs(&mut self, name: &str, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) {
        self.push(name, Element::Vccs { p, n, cp, cn, gm });
    }

    /// Resolves the controlling voltage source for an F/H card: it must
    /// already exist (forward references are resolved by the deck
    /// elaborator, which appends F/H elements last).
    fn ctrl_vsource(&self, name: &str, ctrl: &str) -> Result<usize, SpiceError> {
        let idx = self
            .find_element(ctrl)
            .ok_or_else(|| SpiceError::UnknownName { name: ctrl.into() })?;
        if !matches!(self.elements[idx].1, Element::Vsource { .. }) {
            return Err(SpiceError::InvalidParameter {
                element: name.to_ascii_lowercase(),
                message: format!("controlling element '{ctrl}' is not a voltage source"),
            });
        }
        Ok(idx)
    }

    /// Adds a current-controlled current source sensing the branch current
    /// of the voltage source named `ctrl`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownName`] when `ctrl` does not exist yet, or
    /// [`SpiceError::InvalidParameter`] when it is not a voltage source.
    pub fn cccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        ctrl: &str,
        gain: f64,
    ) -> Result<(), SpiceError> {
        let ctrl = self.ctrl_vsource(name, ctrl)?;
        self.push(name, Element::Cccs { p, n, ctrl, gain });
        Ok(())
    }

    /// Adds a current-controlled voltage source sensing the branch current
    /// of the voltage source named `ctrl`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownName`] when `ctrl` does not exist yet, or
    /// [`SpiceError::InvalidParameter`] when it is not a voltage source.
    pub fn ccvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        ctrl: &str,
        rm: f64,
    ) -> Result<(), SpiceError> {
        let ctrl = self.ctrl_vsource(name, ctrl)?;
        self.push(name, Element::Ccvs { p, n, ctrl, rm });
        Ok(())
    }

    /// Re-points an independent V or I source at a fixed DC value — the
    /// `.DC` sweep hot path: the topology, node ids and MNA layout are
    /// untouched, so symbolic factorizations stay valid across sweep
    /// points.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownName`] when no element has this name, or
    /// [`SpiceError::InvalidParameter`] when it is not an independent
    /// source.
    pub fn set_dc_value(&mut self, name: &str, v: f64) -> Result<(), SpiceError> {
        let idx = self
            .find_element(name)
            .ok_or_else(|| SpiceError::UnknownName { name: name.into() })?;
        match &mut self.elements[idx].1 {
            Element::Vsource { wave, .. } | Element::Isource { wave, .. } => {
                *wave = SourceWave::Dc(v);
                Ok(())
            }
            _ => Err(SpiceError::InvalidParameter {
                element: name.to_ascii_lowercase(),
                message: "only independent V/I sources can be swept".into(),
            }),
        }
    }

    /// Adds a smooth voltage-controlled switch.
    #[allow(clippy::too_many_arguments)]
    pub fn switch(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        ron: f64,
        roff: f64,
        vt: f64,
    ) {
        self.push(
            name,
            Element::Switch {
                p,
                n,
                cp,
                cn,
                ron,
                roff,
                vt,
                vs: 0.1,
            },
        );
    }

    /// Adds a junction diode (anode `p`, cathode `n`).
    ///
    /// # Panics
    ///
    /// Panics unless `is > 0` and `nf > 0`.
    pub fn diode(&mut self, name: &str, p: NodeId, n: NodeId, is: f64, nf: f64) {
        assert!(
            is > 0.0 && is.is_finite(),
            "saturation current must be positive"
        );
        assert!(
            nf > 0.0 && nf.is_finite(),
            "emission coefficient must be positive"
        );
        self.push(name, Element::Diode { p, n, is, nf });
    }

    /// Adds an inductor.
    ///
    /// # Panics
    ///
    /// Panics unless `l` is positive and finite.
    pub fn inductor(&mut self, name: &str, p: NodeId, n: NodeId, l: f64) {
        assert!(l.is_finite() && l > 0.0, "inductance must be positive");
        self.push(name, Element::Inductor { p, n, l });
    }

    /// Adds a MOSFET referencing a registered model by name.
    ///
    /// Geometry is deliberately *not* validated here: the static ERC
    /// layer (lint `E0107`) reports non-physical W/L on a constructed
    /// circuit, which requires such devices to be representable.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownModel`] if the model was never added.
    #[allow(clippy::too_many_arguments)]
    pub fn mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        model: &str,
        w: f64,
        l: f64,
    ) -> Result<(), SpiceError> {
        let model = self
            .find_model(model)
            .ok_or_else(|| SpiceError::UnknownModel { name: model.into() })?;
        self.push(
            name,
            Element::Mosfet {
                d,
                g,
                s,
                b,
                model,
                w,
                l,
            },
        );
        Ok(())
    }

    /// Declares an externally-driven voltage source (for co-simulation) and
    /// returns its external slot index.
    pub fn external_vsource(&mut self, name: &str, p: NodeId, n: NodeId) -> usize {
        let slot = self.num_externals;
        self.num_externals += 1;
        self.push(
            name,
            Element::Vsource {
                p,
                n,
                wave: SourceWave::External { slot },
                ac_mag: 0.0,
            },
        );
        slot
    }

    /// Looks up an element index by name.
    pub fn find_element(&self, name: &str) -> Option<usize> {
        self.element_lookup.get(&name.to_ascii_lowercase()).copied()
    }

    /// Scales the defining magnitude of element `idx` in place: `W` for
    /// a MOSFET, `C` for a capacitor, `R` for a resistor, `L` for an
    /// inductor, `IS` for a diode. This is the Monte-Carlo mismatch hot
    /// path: clone a nominal template circuit and jitter device
    /// magnitudes per point instead of rebuilding the netlist — the
    /// topology, node ids and stamp order are untouched, so MNA layouts
    /// and locked stamp structures stay valid across points.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidParameter`] when `idx` is out of range, the
    /// element kind has no scalable magnitude (sources, controlled
    /// sources, switches), or the scaled value is not positive and
    /// finite.
    pub fn scale_element(&mut self, idx: usize, k: f64) -> Result<(), SpiceError> {
        let err = |element: String, message: &str| SpiceError::InvalidParameter {
            element,
            message: message.into(),
        };
        let Some((name, e)) = self.elements.get_mut(idx) else {
            return Err(err(format!("#{idx}"), "no such element"));
        };
        let target: &mut f64 = match e {
            Element::Resistor { r, .. } => r,
            Element::Capacitor { c, .. } => c,
            Element::Inductor { l, .. } => l,
            Element::Mosfet { w, .. } => w,
            Element::Diode { is, .. } => is,
            _ => return Err(err(name.clone(), "element kind has no scalable magnitude")),
        };
        let scaled = *target * k;
        if !(scaled.is_finite() && scaled > 0.0) {
            return Err(err(
                name.clone(),
                "scaled magnitude must be positive and finite",
            ));
        }
        *target = scaled;
        Ok(())
    }

    /// Count of MOSFETs (the paper quotes its I&D cell as 31 transistors).
    pub fn transistor_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|(_, e)| matches!(e, Element::Mosfet { .. }))
            .count()
    }

    /// True when no element's stamp depends on the solution vector —
    /// Newton then converges in a single solve and the transient fast
    /// path can reuse one LU factorization across every step.
    pub fn is_linear(&self) -> bool {
        self.elements.iter().all(|(_, e)| {
            !matches!(
                e,
                Element::Mosfet { .. } | Element::Diode { .. } | Element::Switch { .. }
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), NodeId::GROUND);
        assert_eq!(c.node("gnd"), NodeId::GROUND);
        assert_eq!(c.node("GND"), NodeId::GROUND);
    }

    #[test]
    fn node_creation_is_idempotent_and_case_insensitive() {
        let mut c = Circuit::new();
        let a = c.node("OutP");
        let b = c.node("outp");
        assert_eq!(a, b);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.node_name(a), "outp");
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.8,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 5e-9,
            period: 10e-9,
        };
        assert_eq!(w.value_at(0.0, &[]), 0.0);
        assert_eq!(w.value_at(2e-9, &[]), 1.8);
        assert!((w.value_at(1.05e-9, &[]) - 0.9).abs() < 1e-9, "mid-rise");
        // Repeats with period 10 ns.
        assert_eq!(w.value_at(12e-9, &[]), 1.8);
        assert_eq!(w.value_at(9.5e-9, &[]), 0.0);
    }

    #[test]
    fn sin_and_pwl_waveforms() {
        let s = SourceWave::Sin {
            offset: 0.9,
            ampl: 0.1,
            freq: 1e6,
            delay: 0.0,
            theta: 0.0,
        };
        assert!((s.value_at(0.25e-6, &[]) - 1.0).abs() < 1e-12);
        let p = SourceWave::Pwl(vec![(0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)]);
        assert_eq!(p.value_at(0.5e-9, &[]), 0.5);
        assert_eq!(p.value_at(5e-9, &[]), 0.5);
        assert_eq!(p.value_at(-1.0, &[]), 0.0);
    }

    #[test]
    fn external_slot_reads_table() {
        let w = SourceWave::External { slot: 1 };
        assert_eq!(w.value_at(0.0, &[0.3, 0.7]), 0.7);
        assert_eq!(w.value_at(0.0, &[]), 0.0, "missing slot defaults to 0");
    }

    #[test]
    fn mosfet_requires_model() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let err = c
            .mosfet(
                "M1",
                d,
                d,
                NodeId::GROUND,
                NodeId::GROUND,
                "nope",
                1e-6,
                1e-6,
            )
            .unwrap_err();
        assert!(matches!(err, SpiceError::UnknownModel { .. }));
        c.add_model("nch", crate::mosfet::MosParams::nmos_018());
        c.mosfet(
            "M1",
            d,
            d,
            NodeId::GROUND,
            NodeId::GROUND,
            "NCH",
            1e-6,
            1e-6,
        )
        .unwrap();
        assert_eq!(c.transistor_count(), 1);
    }

    #[test]
    fn external_vsource_allocates_slots() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let s0 = c.external_vsource("Vx", a, NodeId::GROUND);
        let s1 = c.external_vsource("Vy", a, NodeId::GROUND);
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(c.num_externals, 2);
    }

    #[test]
    fn element_lookup_by_name() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, NodeId::GROUND, 100.0);
        assert_eq!(c.find_element("r1"), Some(0));
        assert_eq!(c.find_element("R2"), None);
    }

    #[test]
    fn current_controlled_sources_require_existing_vsource() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let err = c.cccs("F1", b, NodeId::GROUND, "V1", 2.0).unwrap_err();
        assert!(matches!(err, SpiceError::UnknownName { .. }));
        c.vsource("V1", a, NodeId::GROUND, SourceWave::Dc(1.0));
        c.resistor("R1", a, NodeId::GROUND, 1e3);
        c.cccs("F1", b, NodeId::GROUND, "v1", 2.0).unwrap();
        c.ccvs("H1", b, NodeId::GROUND, "V1", 50.0).unwrap();
        let err = c.cccs("F2", b, NodeId::GROUND, "R1", 2.0).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidParameter { .. }));
        assert!(c.is_linear(), "F/H are linear elements");
    }

    #[test]
    fn set_dc_value_patches_sources_only() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, NodeId::GROUND, SourceWave::Dc(1.0));
        c.resistor("R1", a, NodeId::GROUND, 1e3);
        c.set_dc_value("V1", 2.5).unwrap();
        match &c.elements()[0].1 {
            Element::Vsource { wave, .. } => assert_eq!(*wave, SourceWave::Dc(2.5)),
            _ => panic!("expected vsource"),
        }
        assert!(matches!(
            c.set_dc_value("R1", 1.0),
            Err(SpiceError::InvalidParameter { .. })
        ));
        assert!(matches!(
            c.set_dc_value("nope", 1.0),
            Err(SpiceError::UnknownName { .. })
        ));
    }

    #[test]
    fn scale_element_patches_magnitudes_in_place() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, NodeId::GROUND, 100.0);
        c.capacitor("C1", a, NodeId::GROUND, 1e-12);
        c.vsource("V1", a, NodeId::GROUND, SourceWave::Dc(1.0));
        c.scale_element(0, 1.05).unwrap();
        c.scale_element(1, 0.5).unwrap();
        match c.elements()[0].1 {
            Element::Resistor { r, .. } => assert!((r - 105.0).abs() < 1e-9),
            _ => panic!("expected resistor"),
        }
        match c.elements()[1].1 {
            Element::Capacitor { c: cap, .. } => assert!((cap - 0.5e-12).abs() < 1e-24),
            _ => panic!("expected capacitor"),
        }
        // Sources have no scalable magnitude; bad indices and
        // non-positive results are rejected without mutating.
        assert!(c.scale_element(2, 1.1).is_err());
        assert!(c.scale_element(99, 1.1).is_err());
        assert!(c.scale_element(0, -1.0).is_err());
        assert!(c.scale_element(0, f64::NAN).is_err());
        match c.elements()[0].1 {
            Element::Resistor { r, .. } => assert!((r - 105.0).abs() < 1e-9),
            _ => panic!("expected resistor"),
        }
    }
}
