//! Cross-engine differential test: the same UWB pulse train driven through
//! the transistor-level I&D cell (spice engine) and the calibrated two-pole
//! behavioural model (ams-kernel engine), comparing the integrate-phase
//! output envelopes. The two engines share one numeric substrate
//! (`sim-core`), so a drift between them localises a regression to the
//! engine-specific layers — not to the kernel.

use uwb_txrx::integrator::{
    BehavioralIntegrator, CircuitIntegrator, IntegratorBlock, DEFAULT_INPUT_RANGE,
};

/// Rectified 2 GHz pulse bursts riding on quiet gaps — the shape the I&D
/// sees behind the squarer: `n_sym` symbols, each a 4 ns burst followed by
/// 16 ns of silence, sampled at 50 ps.
fn pulse_train(n_sym: usize, amplitude: f64) -> Vec<f64> {
    let dt = 50e-12;
    let sym = 20e-9;
    let burst = 4e-9;
    let n = (n_sym as f64 * sym / dt) as usize;
    (0..n)
        .map(|i| {
            let t = i as f64 * dt;
            let t_in_sym = t % sym;
            if t_in_sym < burst {
                // Rectified sinusoid: always non-negative, as after the
                // squarer.
                let x = (2.0 * std::f64::consts::PI * 2e9 * t_in_sym).sin();
                amplitude * x * x
            } else {
                0.0
            }
        })
        .collect()
}

/// Integrates the train symbol by symbol (integrate during the symbol,
/// dump between trains is not exercised here — the envelope is the
/// per-symbol peak of the integrated output).
fn envelope(block: &mut dyn IntegratorBlock, train: &[f64]) -> Vec<f64> {
    let dt = 50e-12;
    let per_sym = (20e-9 / dt) as usize;
    block.set_control(true);
    let mut peaks = Vec::new();
    for sym in train.chunks(per_sym) {
        let mut peak = 0.0f64;
        for &v in sym {
            let out = block.step(dt, v).expect("step");
            peak = peak.max(out.abs());
        }
        peaks.push(peak);
    }
    peaks
}

#[test]
fn engines_agree_on_pulse_train_envelope_within_calibration_tolerance() {
    // Drive well inside the measured linear range so the two-pole model is
    // a faithful abstraction (the paper's Phase IV premise).
    let train = pulse_train(4, 0.2 * DEFAULT_INPUT_RANGE);
    let mut circuit = CircuitIntegrator::with_defaults().expect("op converges");
    let mut model = BehavioralIntegrator::default();
    let env_c = envelope(&mut circuit, &train);
    let env_m = envelope(&mut model, &train);
    assert_eq!(env_c.len(), env_m.len());
    for (i, (c, m)) in env_c.iter().zip(&env_m).enumerate() {
        assert!(
            *m > 1e-6,
            "symbol {i}: model envelope must grow, got {m:.3e}"
        );
        // Calibration tolerance: the two-pole fit reproduces the circuit's
        // mid-band integration within a factor-of-two envelope (the same
        // class of agreement `circuit_and_behavioral_share_scale` pins at
        // the single-step level, here held across a full pulse train).
        let rel = (c - m).abs() / m.abs();
        assert!(
            rel < 0.5,
            "symbol {i}: circuit {c:.4e} vs model {m:.4e} (rel {rel:.2})"
        );
    }
    // The envelope accumulates monotonically while integrating — both
    // engines must agree on that qualitative shape, not just magnitudes.
    for env in [&env_c, &env_m] {
        for w in env.windows(2) {
            assert!(w[1] >= w[0] * 0.95, "envelope ratchets up: {env:?}");
        }
    }
    // Neither engine needed the rescue ladder on a healthy run.
    assert_eq!(circuit.rescue_events(), 0);
    assert_eq!(model.rescue_events(), 0);
}
