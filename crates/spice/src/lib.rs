//! # spice — a transistor-level circuit simulator
//!
//! The Rust stand-in for the Eldo/Spice layer of the paper's methodology:
//! modified nodal analysis with
//!
//! * DC operating point ([`dcop()`]) — damped Newton-Raphson with gmin and
//!   source stepping homotopies,
//! * small-signal AC sweeps ([`ac::ac_analysis`]) on the linearised circuit,
//! * Backward-Euler transient ([`tran::TransientSimulator`]) with
//!   per-step Newton and external (co-simulation) source slots,
//! * Level-1 MOSFETs with body effect and Meyer capacitances
//!   ([`mosfet::MosParams`]), resistors, capacitors, controlled sources and
//!   smooth switches,
//! * a SPICE-deck parser ([`netlist::parse_deck`]) with executable `.tran`,
//!   `.ac` and `.print` cards ([`deck::run_deck`]), and
//! * the paper's CMOS Integrate & Dump cell ([`library::integrate_dump`]).
//!
//! ## Example
//!
//! ```
//! use spice::circuit::{Circuit, SourceWave};
//! use spice::dcop::dcop;
//!
//! # fn main() -> Result<(), spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.vsource("V1", vin, Circuit::gnd(), SourceWave::Dc(1.8));
//! ckt.resistor("R1", vin, out, 1e3);
//! ckt.resistor("R2", out, Circuit::gnd(), 2e3);
//! let op = dcop(&ckt)?;
//! assert!((op.voltage(out) - 1.2).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ac;
pub mod circuit;
pub mod deck;
pub mod dcop;
pub mod error;
pub mod library;
pub mod linalg;
pub mod mna;
pub mod mosfet;
pub mod netlist;
pub mod perf;
pub mod tran;

pub use ac::{ac_analysis, log_sweep, AcSweep};
pub use circuit::{Circuit, Element, NodeId, SourceWave};
pub use dcop::{dcop, dcop_with, DcSolution, NewtonOptions};
pub use error::SpiceError;
pub use mosfet::{MosParams, MosType};
pub use deck::run_deck;
pub use perf::PerfCounters;
pub use tran::{Method as TranMethod, TranOptions, TransientSimulator};
