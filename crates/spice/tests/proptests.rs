//! Property tests (opt-in, `--features proptests`) on the circuit
//! simulator's invariants: resistor-ladder monotonicity, the divider
//! formula, engineering-notation parsing, Level-1 MOSFET continuity and
//! antisymmetry, KCL on branch currents and PULSE waveform bounds.
//!
//! The generator is a deterministic xorshift so failures replay by seed —
//! no external proptest crate (the build environment is offline).
#![cfg(feature = "proptests")]

use spice::circuit::{Circuit, NodeId, SourceWave};
use spice::dcop::dcop;
use spice::mosfet::{eval_mosfet, MosParams};
use spice::netlist::parse_value;
use spice::tran::{collect_breakpoints, AdaptiveOptions, TranOptions, TransientSimulator};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Log-uniform across [lo, hi] (both positive).
    fn log_range(&mut self, lo: f64, hi: f64) -> f64 {
        (self.range(lo.ln(), hi.ln())).exp()
    }
}

/// In a resistor ladder from V to ground, node voltages are monotone
/// non-increasing and bounded by the rails.
#[test]
fn ladder_voltages_monotone() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..300 {
        let seed = rng.0;
        let v_src = rng.range(0.1, 10.0);
        let n_rungs = 2 + rng.below(6) as usize;
        let mut c = Circuit::new();
        let top = c.node("n0");
        c.vsource("V1", top, Circuit::gnd(), SourceWave::Dc(v_src));
        let mut prev = top;
        for i in 0..n_rungs {
            let n = c.node(&format!("n{}", i + 1));
            c.resistor(&format!("R{i}"), prev, n, rng.log_range(10.0, 1e6));
            prev = n;
        }
        c.resistor("RL", prev, Circuit::gnd(), 1e3);
        let op = dcop(&c).expect("ladders converge");
        let mut last = v_src + 1e-9;
        for i in 0..=n_rungs {
            let v = op.voltage(c.find_node(&format!("n{i}")).expect("node"));
            assert!(
                v <= last + 1e-9,
                "case {case} (seed {seed:#x}): monotone at n{i}: {v} > {last}"
            );
            assert!(v >= -1e-9, "case {case} (seed {seed:#x}): below ground");
            last = v;
        }
    }
}

/// Two-resistor divider matches the analytic ratio.
#[test]
fn divider_matches_formula() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..500 {
        let seed = rng.0;
        let v = rng.log_range(0.01, 100.0);
        let r1 = rng.log_range(1.0, 1e6);
        let r2 = rng.log_range(1.0, 1e6);
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(v));
        c.resistor("R1", a, b, r1);
        c.resistor("R2", b, Circuit::gnd(), r2);
        let op = dcop(&c).expect("converges");
        let expect = v * r2 / (r1 + r2);
        assert!(
            (op.voltage(b) - expect).abs() < 1e-6 * v.abs() + 1e-9,
            "case {case} (seed {seed:#x}): {} vs {expect}",
            op.voltage(b)
        );
    }
}

/// Engineering-notation parser inverts formatting for plain numbers, and
/// suffix parsing scales consistently with the plain form.
#[test]
fn parse_value_roundtrip_and_suffixes() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..500 {
        let seed = rng.0;
        let mant = rng.range(0.001, 999.0);
        let exp = rng.below(21) as i32 - 12; // -12 ..= 8
        let v = mant * 10f64.powi(exp);
        let s = format!("{v:e}");
        let parsed = parse_value(&s).expect("parses");
        assert!(
            (parsed - v).abs() <= 1e-12 * v.abs(),
            "case {case} (seed {seed:#x}): {parsed} vs {v} from {s:?}"
        );

        let m = rng.range(0.1, 100.0);
        for (suffix, scale) in [
            ("k", 1e3),
            ("m", 1e-3),
            ("u", 1e-6),
            ("n", 1e-9),
            ("p", 1e-12),
            ("meg", 1e6),
        ] {
            let with_suffix = parse_value(&format!("{m}{suffix}")).expect("parses");
            assert!(
                (with_suffix - m * scale).abs() <= 1e-9 * with_suffix.abs(),
                "case {case} (seed {seed:#x}): {m}{suffix}"
            );
        }
    }
}

/// Level-1 drain current is continuous across the triode/saturation
/// boundary and monotone in vgs in saturation.
#[test]
fn mosfet_continuity_and_monotonicity() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..500 {
        let seed = rng.0;
        let w = rng.log_range(1e-6, 50e-6);
        let l = rng.log_range(0.18e-6, 2e-6);
        let vgs = rng.range(0.5, 1.8);
        let p = MosParams::nmos_018();
        let vdsat = vgs - p.vt0;
        let below = eval_mosfet(&p, w, l, vgs, vdsat - 1e-9, 0.0, 0.0).0.ids;
        let above = eval_mosfet(&p, w, l, vgs, vdsat + 1e-9, 0.0, 0.0).0.ids;
        assert!(
            (below - above).abs() < 1e-6 * above.abs().max(1e-12),
            "case {case} (seed {seed:#x}): kink at vdsat: {below} vs {above}"
        );

        let i1 = eval_mosfet(&p, w, l, vgs, 1.5, 0.0, 0.0).0.ids;
        let i2 = eval_mosfet(&p, w, l, vgs + 0.05, 1.5, 0.0, 0.0).0.ids;
        assert!(i2 > i1, "case {case} (seed {seed:#x}): gm positive");
    }
}

/// Source/drain swap antisymmetry: reversing the channel reverses the
/// current exactly.
#[test]
fn mosfet_swap_antisymmetry() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    let mut conducting = 0usize;
    for case in 0..500 {
        let seed = rng.0;
        let vg = rng.range(0.6, 1.8);
        let vd = rng.range(0.0, 1.2);
        let vs = rng.range(0.0, 1.2);
        let p = MosParams::nmos_018();
        let fwd = eval_mosfet(&p, 10e-6, 1e-6, vg, vd, vs, 0.0).0.ids;
        let rev = eval_mosfet(&p, 10e-6, 1e-6, vg, vs, vd, 0.0).0.ids;
        assert!(
            (fwd + rev).abs() < 1e-9 * fwd.abs().max(1e-15),
            "case {case} (seed {seed:#x}): fwd {fwd} rev {rev}"
        );
        if fwd.abs() > 1e-12 {
            conducting += 1;
        }
    }
    // The generator must actually exercise a conducting channel, not just
    // the trivially-antisymmetric cutoff region.
    assert!(conducting > 100, "only {conducting} conducting cases");
}

/// KCL at the output node of a one-resistor load: the source branch
/// current equals the load current (up to the gmin path to ground).
#[test]
fn branch_current_satisfies_kcl() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..500 {
        let seed = rng.0;
        let v = rng.log_range(0.1, 10.0);
        let r = rng.log_range(100.0, 1e5);
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(v));
        c.resistor("R1", a, Circuit::gnd(), r);
        let op = dcop(&c).expect("converges");
        // Branch current (p→n through source) must be −v/r, up to the
        // gmin (1e-12 S) path that the assembler adds to ground.
        let layout = op.layout();
        let ib = op.x[layout.size() - 1];
        let tol = 1e-9 * (v / r).abs() + 1.1e-12 * v.abs() + 1e-14;
        assert!(
            (ib + v / r).abs() < tol,
            "case {case} (seed {seed:#x}): ib {ib} vs {}",
            -v / r
        );
    }
}

/// PULSE waveforms stay within [min(v1,v2), max(v1,v2)].
#[test]
fn pulse_bounded() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..2000 {
        let seed = rng.0;
        let v1 = rng.range(-5.0, 5.0);
        let v2 = rng.range(-5.0, 5.0);
        let t = rng.range(0.0, 100e-9);
        let w = SourceWave::Pulse {
            v1,
            v2,
            delay: 5e-9,
            rise: 1e-9,
            fall: 1e-9,
            width: 10e-9,
            period: 30e-9,
        };
        let val = w.value_at(t, &[]);
        assert!(
            val >= v1.min(v2) - 1e-12 && val <= v1.max(v2) + 1e-12,
            "case {case} (seed {seed:#x}): {val} outside [{}, {}]",
            v1.min(v2),
            v1.max(v2)
        );
    }
}

/// A random RLC ladder: series R (sometimes with a series L) per rung,
/// shunt C to ground, driven by a single PULSE. Returns the circuit and
/// the observable nodes.
fn random_rlc_ladder(rng: &mut XorShift) -> (Circuit, Vec<NodeId>) {
    let n_rungs = 1 + rng.below(4) as usize;
    let mut c = Circuit::new();
    let top = c.node("n0");
    c.vsource(
        "V1",
        top,
        Circuit::gnd(),
        SourceWave::Pulse {
            v1: 0.0,
            v2: rng.range(0.5, 1.8),
            delay: 50e-9,
            rise: 20e-9,
            fall: 20e-9,
            width: 500e-9,
            period: 0.0,
        },
    );
    let mut nodes = vec![top];
    let mut prev = top;
    for i in 0..n_rungs {
        let n = c.node(&format!("n{}", i + 1));
        let r = rng.log_range(300.0, 3e3);
        if rng.below(3) == 0 {
            // Series RL rung: L/R and sqrt(LC) stay well under the
            // stimulus timescale so the ladder remains well-damped.
            let mid = c.node(&format!("l{i}"));
            c.resistor(&format!("R{i}"), prev, mid, r);
            c.inductor(&format!("L{i}"), mid, n, rng.log_range(0.1e-6, 2e-6));
        } else {
            c.resistor(&format!("R{i}"), prev, n, r);
        }
        c.capacitor(
            &format!("C{i}"),
            n,
            Circuit::gnd(),
            rng.log_range(0.2e-9, 2e-9),
        );
        nodes.push(n);
        prev = n;
    }
    (c, nodes)
}

/// Adaptive transient on random RLC ladders agrees with a fine
/// fixed-step reference at the landing points, and the step controller
/// never livelocks: rejected steps stay bounded by accepted ones.
#[test]
fn adaptive_rlc_ladders_match_fine_reference_without_livelock() {
    let mut rng = XorShift(0xd1b54a32d192ed03);
    const T_MID: f64 = 300e-9;
    const T_STOP: f64 = 1000e-9;
    const H_FINE: f64 = 0.5e-9;
    for case in 0..40 {
        let seed = rng.0;
        let (c, nodes) = random_rlc_ladder(&mut rng);

        // Fine fixed-step reference: 2000 BE steps, sampled at the two
        // landing points the adaptive run must hit exactly.
        let (c_ref, _) = {
            let mut r2 = XorShift(seed);
            random_rlc_ladder(&mut r2)
        };
        let mut reference = TransientSimulator::new(c_ref, TranOptions::default())
            .unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): ref op {e}"));
        let mut ref_mid: Option<Vec<f64>> = None;
        let steps = (T_STOP / H_FINE).round() as usize;
        let mid_step = (T_MID / H_FINE).round() as usize;
        for s in 1..=steps {
            reference
                .step(H_FINE)
                .unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): ref step {e}"));
            if s == mid_step {
                ref_mid = Some(nodes.iter().map(|&n| reference.voltage(n)).collect());
            }
        }
        let ref_mid = ref_mid.expect("T_MID lies on the fine grid");
        let ref_end: Vec<f64> = nodes.iter().map(|&n| reference.voltage(n)).collect();

        let mut bps = collect_breakpoints(&c, T_STOP);
        bps.push(T_MID);
        let opts = TranOptions {
            adaptive: AdaptiveOptions::on(),
            ..Default::default()
        };
        let mut sim = TransientSimulator::new(c, opts)
            .unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): op {e}"));
        let mut mid: Option<Vec<f64>> = None;
        sim.run_adaptive(T_STOP, 5e-9, &bps, |s| {
            if s.time() == T_MID {
                mid = Some(nodes.iter().map(|&n| s.voltage(n)).collect());
            }
        })
        .unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): adaptive {e}"));
        let mid = mid.unwrap_or_else(|| panic!("case {case} (seed {seed:#x}): T_MID not hit"));
        let end: Vec<f64> = nodes.iter().map(|&n| sim.voltage(n)).collect();

        for (i, ((m, rm), (e, re))) in mid
            .iter()
            .zip(&ref_mid)
            .zip(end.iter().zip(&ref_end))
            .enumerate()
        {
            assert!(
                (m - rm).abs() < 2e-2,
                "case {case} (seed {seed:#x}) node {i} at T_MID: adaptive {m} vs ref {rm}"
            );
            assert!(
                (e - re).abs() < 2e-2,
                "case {case} (seed {seed:#x}) node {i} at T_STOP: adaptive {e} vs ref {re}"
            );
        }

        let counters = sim.counters();
        assert!(
            counters.steps_rejected <= 4 * counters.steps + 64,
            "case {case} (seed {seed:#x}): livelock: {counters}"
        );
        assert!(
            counters.steps < 2000,
            "case {case} (seed {seed:#x}): adaptive used {} steps, the fine grid used 2000",
            counters.steps
        );
    }
}

/// A randomly generated tree of `.subckt` definitions: each definition
/// `s<i>` may instantiate strictly lower-indexed definitions (so the tree
/// is acyclic by construction) plus some local resistors.
struct SubcktTree {
    /// `children[i]` = the defs instantiated inside `s<i>` (all `< i`).
    children: Vec<Vec<usize>>,
    /// `internal[i]` = how many internal nodes `s<i>` declares (1..=2).
    internal: Vec<usize>,
    /// Top-level instances, in order, each an index into the defs.
    top: Vec<usize>,
}

fn random_tree(rng: &mut XorShift) -> SubcktTree {
    let n_defs = 1 + rng.below(4) as usize;
    let mut children = Vec::with_capacity(n_defs);
    let mut internal = Vec::with_capacity(n_defs);
    for i in 0..n_defs {
        let n_kids = if i == 0 { 0 } else { rng.below(3) as usize };
        children.push((0..n_kids).map(|_| rng.below(i as u64) as usize).collect());
        internal.push(1 + rng.below(2) as usize);
    }
    let top = (0..1 + rng.below(3) as usize)
        .map(|_| rng.below(n_defs as u64) as usize)
        .collect();
    SubcktTree {
        children,
        internal,
        top,
    }
}

/// Renders the tree as a deck. Every definition is a two-port (`a`, `b`)
/// resistive network that keeps all internal nodes connected, so the
/// whole deck is solvable.
fn tree_deck(tree: &SubcktTree) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (i, kids) in tree.children.iter().enumerate() {
        let _ = writeln!(s, ".subckt s{i} a b");
        // Chain a → m0 → [m1] → b through resistors.
        let m = tree.internal[i];
        let _ = writeln!(s, "R0 a m0 1k");
        if m == 2 {
            let _ = writeln!(s, "R1 m0 m1 1k");
        }
        let _ = writeln!(s, "R2 m{} b 1k", m - 1);
        for (k, &kid) in kids.iter().enumerate() {
            let _ = writeln!(s, "Xk{k} a m0 s{kid}");
        }
        let _ = writeln!(s, ".ends");
    }
    let _ = writeln!(s, "V1 top 0 DC 1");
    let mut prev = "top".to_string();
    for (j, &def) in tree.top.iter().enumerate() {
        let next = if j + 1 == tree.top.len() {
            "0".to_string()
        } else {
            format!("t{j}")
        };
        let _ = writeln!(s, "Xt{j} {prev} {next} s{def}");
        prev = next;
    }
    s
}

/// Walks the tree exactly as elaboration should, collecting every node
/// name the flat circuit must contain.
fn expected_nodes(tree: &SubcktTree, def: usize, prefix: &str, out: &mut Vec<String>) {
    for m in 0..tree.internal[def] {
        out.push(format!("{prefix}m{m}"));
    }
    for (k, &kid) in tree.children[def].iter().enumerate() {
        expected_nodes(tree, kid, &format!("{prefix}xk{k}."), out);
    }
}

/// Elaboration of random nested subckt trees is deterministic (two parses
/// render to identical decks) and collision-free (the flat circuit has
/// exactly the predicted node set — every instance's internals are
/// distinct).
#[test]
fn elaboration_deterministic_and_collision_free() {
    use spice::netlist::{parse_deck, write_deck};
    let mut rng = XorShift(0x1234_5678_9abc_def1);
    for case in 0..200 {
        let seed = rng.0;
        let tree = random_tree(&mut rng);
        let deck = tree_deck(&tree);
        let c1 = parse_deck(&deck).unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): {e}"));
        let c2 = parse_deck(&deck).expect("second parse");
        assert_eq!(
            write_deck(&c1),
            write_deck(&c2),
            "case {case} (seed {seed:#x}): elaboration is not deterministic"
        );

        let mut expect: Vec<String> = vec!["top".into()];
        for j in 0..tree.top.len().saturating_sub(1) {
            expect.push(format!("t{j}"));
        }
        for (j, &def) in tree.top.iter().enumerate() {
            expected_nodes(&tree, def, &format!("xt{j}."), &mut expect);
        }
        // Collision-free: every predicted name resolves, and nothing else
        // exists (ground is the one extra).
        for name in &expect {
            assert!(
                c1.find_node(name).is_some(),
                "case {case} (seed {seed:#x}): missing node {name}"
            );
        }
        let distinct: std::collections::BTreeSet<&String> = expect.iter().collect();
        assert_eq!(
            c1.num_nodes(),
            distinct.len() + 1,
            "case {case} (seed {seed:#x}): node-name collision or spurious node"
        );

        // The flat circuit is solvable: purely resistive, so this also
        // certifies no instance shorted another's internals.
        let op = dcop(&c1).unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): {e}"));
        let top = c1.find_node("top").expect("driven node");
        assert!((op.voltage(top) - 1.0).abs() < 1e-9);
    }
}
