//! Extension — ranging accuracy vs distance.
//!
//! The paper evaluates TWR at a single point (9.9 m) and leaves "the
//! complete design" to future work; this bench sweeps the distance axis
//! with the ideal integrator (add `UWB_AMS_BENCH=full` to include the
//! transistor-level one) and reports accuracy, spread and lost exchanges
//! per point — the localisation-application view of the system.

use uwb_ams_core::metrics::{distance_sweep_table, TwrDistanceSweep};
use uwb_txrx::integrator::{build_integrator, Fidelity};

fn main() {
    let full = std::env::var("UWB_AMS_BENCH").as_deref() == Ok("full");
    let sweep = TwrDistanceSweep::default();
    println!(
        "=== Extension: TWR accuracy vs distance ({} exchanges/point) ===\n",
        sweep.iterations
    );

    let fidelities = if full {
        vec![Fidelity::Ideal, Fidelity::Circuit]
    } else {
        vec![Fidelity::Ideal]
    };
    for f in fidelities {
        let t0 = std::time::Instant::now();
        match sweep.run(&f.to_string(), || build_integrator(f).expect("integrator")) {
            Ok(rows) => {
                println!("{f} ({:?}):", t0.elapsed());
                println!("{}", distance_sweep_table(&rows));
                // Accuracy should not collapse with distance while the link
                // budget holds (path loss n = 1.79 keeps 20 m well above
                // the noise floor at the default transmit energy).
                let worst_offset = rows
                    .iter()
                    .map(|(_, r)| r.offset.abs())
                    .fold(0.0f64, f64::max);
                println!("worst |offset| across the sweep: {worst_offset:.2} m\n");
            }
            Err(e) => println!("{f}: FAILED ({e})"),
        }
    }
}
