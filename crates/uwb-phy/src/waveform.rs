//! Sampled waveforms.
//!
//! A [`Waveform`] is a uniformly sampled real signal with an explicit sample
//! rate — the common currency between the transmitter, channel, noise and
//! receiver blocks.

/// A uniformly sampled real-valued signal.
///
/// # Examples
///
/// ```
/// use uwb_phy::waveform::Waveform;
///
/// let mut w = Waveform::zeros(20e9, 100); // 5 ns at 20 GS/s
/// w.samples_mut()[10] = 1.0;
/// assert_eq!(w.duration(), 100.0 / 20e9);
/// assert!((w.energy() - 1.0 / 20e9).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    fs: f64,
    samples: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from samples at rate `fs` (Hz).
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive and finite.
    pub fn new(fs: f64, samples: Vec<f64>) -> Self {
        assert!(fs.is_finite() && fs > 0.0, "sample rate must be positive");
        Waveform { fs, samples }
    }

    /// An all-zero waveform of `len` samples.
    pub fn zeros(fs: f64, len: usize) -> Self {
        Waveform::new(fs, vec![0.0; len])
    }

    /// Builds a waveform by evaluating `f(t)` at each sample instant over
    /// `[0, duration)`.
    pub fn from_fn(fs: f64, duration: f64, f: impl Fn(f64) -> f64) -> Self {
        let n = (duration * fs).round() as usize;
        Waveform::new(fs, (0..n).map(|i| f(i as f64 / fs)).collect())
    }

    /// Sample rate, Hz.
    pub fn sample_rate(&self) -> f64 {
        self.fs
    }

    /// Sample period, s.
    pub fn dt(&self) -> f64 {
        1.0 / self.fs
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total duration, s.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.fs
    }

    /// Immutable sample access.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable sample access.
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Consumes the waveform, returning its samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Signal value at time `t` (zero outside the span, no interpolation).
    pub fn at(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let i = (t * self.fs).round() as usize;
        self.samples.get(i).copied().unwrap_or(0.0)
    }

    /// Signal energy `∫ x²(t) dt` (discrete approximation).
    pub fn energy(&self) -> f64 {
        self.samples.iter().map(|x| x * x).sum::<f64>() / self.fs
    }

    /// Peak absolute amplitude.
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Scales all samples in place.
    pub fn scale(&mut self, k: f64) {
        for s in &mut self.samples {
            *s *= k;
        }
    }

    /// Adds `other` into `self` starting at `offset` seconds
    /// (sample rates must match; clipped to `self`'s span).
    ///
    /// # Panics
    ///
    /// Panics if sample rates differ.
    pub fn add_at(&mut self, other: &Waveform, offset: f64) {
        assert!(
            (self.fs - other.fs).abs() < 1e-6 * self.fs,
            "sample-rate mismatch"
        );
        let start = (offset * self.fs).round() as i64;
        for (i, &v) in other.samples.iter().enumerate() {
            let idx = start + i as i64;
            if idx >= 0 {
                if let Some(slot) = self.samples.get_mut(idx as usize) {
                    *slot += v;
                }
            }
        }
    }

    /// Full linear convolution with a (typically short) impulse response
    /// given as (delay-in-samples, amplitude) taps — the sparse form a
    /// multipath channel produces. Output length = input length + max tap.
    pub fn convolve_taps(&self, taps: &[(usize, f64)]) -> Waveform {
        let max_delay = taps.iter().map(|&(d, _)| d).max().unwrap_or(0);
        let mut out = vec![0.0; self.samples.len() + max_delay];
        for &(d, a) in taps {
            if a == 0.0 {
                continue;
            }
            for (i, &x) in self.samples.iter().enumerate() {
                out[i + d] += a * x;
            }
        }
        Waveform::new(self.fs, out)
    }

    /// Extends (or truncates) to exactly `len` samples, zero-padding.
    pub fn resize(&mut self, len: usize) {
        self.samples.resize(len, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_samples_correctly() {
        let w = Waveform::from_fn(1e9, 10e-9, |t| t * 1e9);
        assert_eq!(w.len(), 10);
        assert_eq!(w.samples()[3], 3.0);
    }

    #[test]
    fn energy_of_unit_rect() {
        // 1 V for 5 ns → E = 5e-9 V²s.
        let w = Waveform::new(1e9, vec![1.0; 5]);
        assert!((w.energy() - 5e-9).abs() < 1e-20);
    }

    #[test]
    fn add_at_respects_offset_and_clipping() {
        let mut base = Waveform::zeros(1e9, 10);
        let pulse = Waveform::new(1e9, vec![1.0, 2.0]);
        base.add_at(&pulse, 3e-9);
        assert_eq!(base.samples()[3], 1.0);
        assert_eq!(base.samples()[4], 2.0);
        // Beyond the end: silently clipped.
        base.add_at(&pulse, 9.5e-9);
        assert_eq!(base.len(), 10);
    }

    #[test]
    fn convolve_taps_superposes_echoes() {
        let w = Waveform::new(1e9, vec![1.0, 0.0, 0.0]);
        let y = w.convolve_taps(&[(0, 1.0), (2, 0.5)]);
        assert_eq!(y.samples(), &[1.0, 0.0, 0.5, 0.0, 0.0]);
    }

    #[test]
    fn at_is_zero_outside_span() {
        let w = Waveform::new(1e9, vec![1.0, 2.0]);
        assert_eq!(w.at(-1e-9), 0.0);
        assert_eq!(w.at(1e-9), 2.0);
        assert_eq!(w.at(10e-9), 0.0);
    }

    #[test]
    #[should_panic(expected = "sample-rate mismatch")]
    fn mismatched_rates_panic() {
        let mut a = Waveform::zeros(1e9, 4);
        let b = Waveform::zeros(2e9, 4);
        a.add_at(&b, 0.0);
    }

    #[test]
    fn peak_and_scale() {
        let mut w = Waveform::new(1e9, vec![0.5, -2.0, 1.0]);
        assert_eq!(w.peak(), 2.0);
        w.scale(0.5);
        assert_eq!(w.peak(), 1.0);
    }
}
