//! Error types for the circuit simulator.

use std::fmt;

/// A structured netlist parse failure: the deck position, the offending
/// token and a stable code, rendered in the same
/// `severity[code] subject: message (span)` shape as the lint diagnostics
/// so front-end and static-analysis findings read alike.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseDiagnostic {
    /// Stable code: `P0101` lexical (bad number/suffix), `P0102` card
    /// syntax, `P0103` elaboration (subcircuit expansion), `P0104`
    /// duplicate definition (`.model`/`.subckt` redefined).
    pub code: &'static str,
    /// 1-based deck line.
    pub line: usize,
    /// 1-based column of the offending token; 0 when the finding applies
    /// to the whole card.
    pub column: usize,
    /// The offending token text (empty when a token is *missing*).
    pub token: String,
    /// Human explanation with the concrete values involved.
    pub message: String,
}

impl ParseDiagnostic {
    /// A lexical finding (`P0101`): a token that is not a valid number,
    /// suffix or name.
    pub fn lexical(
        line: usize,
        column: usize,
        token: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        ParseDiagnostic {
            code: "P0101",
            line,
            column,
            token: token.into(),
            message: message.into(),
        }
    }

    /// A card-syntax finding (`P0102`): the card as a whole is malformed.
    pub fn card(line: usize, message: impl Into<String>) -> Self {
        ParseDiagnostic {
            code: "P0102",
            line,
            column: 0,
            token: String::new(),
            message: message.into(),
        }
    }

    /// An elaboration finding (`P0103`): subcircuit expansion failed.
    pub fn elaboration(line: usize, token: impl Into<String>, message: impl Into<String>) -> Self {
        ParseDiagnostic {
            code: "P0103",
            line,
            column: 0,
            token: token.into(),
            message: message.into(),
        }
    }

    /// A duplicate-definition finding (`P0104`): a `.model` or `.subckt`
    /// name defined more than once. Silent last-one-wins resolution is
    /// exactly the kind of deck bug that survives to a wrong answer.
    pub fn duplicate(line: usize, token: impl Into<String>, message: impl Into<String>) -> Self {
        ParseDiagnostic {
            code: "P0104",
            line,
            column: 0,
            token: token.into(),
            message: message.into(),
        }
    }

    /// Renders like a lint diagnostic:
    /// `error[P0102] 'x9': unsupported element type (line 4, col 1)`.
    pub fn render(&self) -> String {
        let subject = if self.token.is_empty() {
            "<card>".to_string()
        } else {
            format!("'{}'", self.token)
        };
        let span = if self.column > 0 {
            format!("line {}, col {}", self.line, self.column)
        } else {
            format!("line {}", self.line)
        };
        format!("error[{}] {subject}: {} ({span})", self.code, self.message)
    }
}

impl fmt::Display for ParseDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Any failure raised by circuit construction or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The DC operating point iteration failed to converge.
    DcopDiverged {
        /// Iterations attempted across all homotopy stages.
        iterations: usize,
        /// Final voltage-update norm.
        delta: f64,
    },
    /// A matrix factorisation failed (floating node or degenerate circuit).
    Singular {
        /// Analysis in which it occurred ("dcop", "tran", "ac").
        analysis: &'static str,
        /// Order of the offending MNA system.
        order: usize,
        /// Pivot column at which elimination broke down; equals `order`
        /// when the factorization succeeded but the solve produced
        /// non-finite values.
        pivot: usize,
    },
    /// Newton failed during a transient step.
    TranDiverged {
        /// Time of the failing step in seconds.
        t: f64,
    },
    /// A numeric guard caught a NaN/Inf before it reached the linear
    /// solver (see [`sim_core::linalg::NumericFault`] for the provenance).
    Numeric {
        /// Analysis in which it occurred ("dcop", "tran", "ac").
        analysis: &'static str,
        /// Which operand went non-finite, and where.
        fault: sim_core::linalg::NumericFault,
    },
    /// A netlist line could not be parsed (or elaborated); the diagnostic
    /// carries line/column, the offending token and a stable code.
    Parse(ParseDiagnostic),
    /// A referenced model name was never defined.
    UnknownModel {
        /// The missing model name.
        name: String,
    },
    /// An element or node lookup by name failed.
    UnknownName {
        /// The name that could not be resolved.
        name: String,
    },
    /// An element was built with an invalid parameter.
    InvalidParameter {
        /// Element name.
        element: String,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::DcopDiverged { iterations, delta } => write!(
                f,
                "dc operating point failed to converge after {iterations} iterations (last delta {delta:.3e})"
            ),
            SpiceError::Singular {
                analysis,
                order,
                pivot,
            } => {
                write!(
                    f,
                    "singular MNA matrix during {analysis}: order {order}, pivot column {pivot} (floating node?)"
                )
            }
            SpiceError::TranDiverged { t } => {
                write!(f, "transient newton diverged at t = {t:.4e} s")
            }
            SpiceError::Numeric { analysis, fault } => {
                write!(f, "numeric fault during {analysis}: {fault}")
            }
            SpiceError::Parse(diag) => {
                write!(f, "netlist parse error: {diag}")
            }
            SpiceError::UnknownModel { name } => write!(f, "unknown model '{name}'"),
            SpiceError::UnknownName { name } => write!(f, "unknown element or node '{name}'"),
            SpiceError::InvalidParameter { element, message } => {
                write!(f, "invalid parameter on '{element}': {message}")
            }
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpiceError::DcopDiverged {
            iterations: 300,
            delta: 0.5,
        };
        assert!(e.to_string().contains("300"));
        let e = SpiceError::Parse(ParseDiagnostic::card(4, "bad value"));
        assert!(e.to_string().contains("line 4"));
        assert!(e.to_string().contains("P0102"));
        let d = ParseDiagnostic::lexical(2, 7, "1x", "unknown suffix");
        assert!(d.render().contains("'1x'"), "{}", d.render());
        assert!(d.render().contains("line 2, col 7"), "{}", d.render());
        let d = ParseDiagnostic::duplicate(9, "cell", "already defined at line 2");
        assert!(d.render().contains("error[P0104] 'cell'"), "{}", d.render());
        assert!(d.render().contains("(line 9)"), "{}", d.render());
        let e = SpiceError::Singular {
            analysis: "ac",
            order: 5,
            pivot: 3,
        };
        assert!(e.to_string().contains("ac"));
        assert!(e.to_string().contains("order 5"));
        assert!(e.to_string().contains("column 3"));
        let e = SpiceError::Numeric {
            analysis: "tran",
            fault: sim_core::linalg::NumericFault {
                nan: true,
                row: 2,
                col: Some(1),
                stage: "matrix",
            },
        };
        assert!(e.to_string().contains("tran"), "{e}");
        assert!(e.to_string().contains("NaN"), "{e}");
        assert!(e.to_string().contains("(2, 1)"), "{e}");
    }
}
