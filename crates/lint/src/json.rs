//! Minimal recursive-descent JSON reader (RFC 8259 subset, no external
//! dependencies) — the inverse of [`crate::Report::to_json`]'s hand-rolled
//! writer, used by [`crate::Report::from_json`] and by tools that consume
//! the `--json` output of the example binaries.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as f64.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is not preserved.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    pub(crate) fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self
            .peek()
            .ok_or_else(|| "unexpected end of input".to_string())?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        let got = self.bump()?;
        if got != c {
            return Err(format!(
                "expected '{c}' at offset {}, got '{got}'",
                self.pos
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(JsonValue::String(self.string()?)),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('n') => self.literal("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{c}' at offset {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(JsonValue::Object(map)),
                c => return Err(format!("expected ',' or '}}', got '{c}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(JsonValue::Array(items)),
                c => return Err(format!("expected ',' or ']', got '{c}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(s),
                '\\' => match self.bump()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'b' => s.push('\u{0008}'),
                    'f' => s.push('\u{000c}'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or_else(|| format!("bad \\u hex digit '{d}'"))?;
                        }
                        // Surrogate pairs are not produced by the writer;
                        // lone surrogates decode to the replacement char.
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("bad escape '\\{c}'")),
                },
                c if (c as u32) < 0x20 => return Err("raw control character inside string".into()),
                c => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\ny")
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("d")),
            Some(&JsonValue::Bool(true))
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse(r#"{"a":01x}"#).is_err());
    }

    #[test]
    fn unescapes_unicode() {
        let v = parse("\"A\\u00e9\\u0007\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9}\u{7}"));
    }
}
