//! System-level metric campaigns: BER curves (Figure 6), Two-Way-Ranging
//! statistics (Table 2) and CPU-time accounting (Table 1).

use crate::executor::{run_indexed, stream_seed, try_run_indexed, worker_threads};
use crate::report::{Series, Table};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sim_core::PerfCounters;
use std::time::{Duration, Instant};
use uwb_phy::ber::BerEstimate;
use uwb_phy::channel::{realize, Tg4aModel};
use uwb_phy::modulation::{modulate, Packet};
use uwb_phy::noise::Awgn;
use uwb_phy::ranging::RangingStats;
use uwb_phy::waveform::Waveform;
use uwb_txrx::integrator::{Fidelity, IntegratorBlock, IntegratorError};
use uwb_txrx::receiver::{ReceiveError, Receiver, ReceiverConfig, SFD_PATTERN};
use uwb_txrx::transceiver::{TwrConfig, TwrError, TwrIteration};
use uwb_txrx::transmitter::Transmitter;

/// One point of a measured BER curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerPoint {
    /// Eb/N0 at the receiver input, dB.
    pub ebn0_db: f64,
    /// Errors observed.
    pub errors: u64,
    /// Bits simulated.
    pub bits: u64,
    /// Solver steps at this point that only completed via the
    /// convergence-rescue ladder. A point with `rescued > 0` finished —
    /// the campaign demotes it to a warning instead of failing; campaigns
    /// fail only when the ladder itself is exhausted.
    pub rescued: u64,
}

impl BerPoint {
    /// Point estimate of the BER.
    pub fn ber(&self) -> f64 {
        BerEstimate {
            errors: self.errors,
            bits: self.bits,
        }
        .ber()
    }
}

/// A measured BER curve for one integrator fidelity.
#[derive(Debug, Clone, PartialEq)]
pub struct BerCurve {
    /// Label (fidelity name).
    pub label: String,
    /// Measured points.
    pub points: Vec<BerPoint>,
    /// One entry per rescued point: solver trouble that was absorbed by
    /// the rescue ladder instead of failing the campaign.
    pub warnings: Vec<String>,
}

impl BerCurve {
    /// Converts to a plot series (x = Eb/N0 dB, y = BER; zero-error points
    /// are floored at `1/(3·bits)` so log plots stay finite).
    pub fn to_series(&self) -> Series {
        Series::new(
            &self.label,
            self.points
                .iter()
                .map(|p| {
                    let floor = 1.0 / (3.0 * p.bits.max(1) as f64);
                    (p.ebn0_db, p.ber().max(floor))
                })
                .collect(),
        )
    }
}

/// BER measurement campaign (genie-timed, AGC active — the paper's Fig 6
/// setup: everything ideal except the I&D under test).
#[derive(Debug, Clone, PartialEq)]
pub struct BerCampaign {
    /// Receiver configuration.
    pub receiver: ReceiverConfig,
    /// Per-bit energy at the receiver input, V²s.
    pub eb_rx: f64,
    /// Eb/N0 sweep grid, dB.
    pub ebn0_db: Vec<f64>,
    /// Bits per sweep point.
    pub bits_per_point: usize,
    /// Bits per generated waveform block.
    pub block_bits: usize,
    /// Run the AGC on each block's preamble.
    pub run_agc: bool,
    /// `Some((model, distance))` runs over fading multipath: each block
    /// draws a fresh channel realisation (Eb/N0 is then defined for the
    /// *average* received energy, i.e. `eb_rx · path_gain²`; per-block
    /// fading moves the instantaneous SNR around that point, as in any
    /// fading-channel BER). `None` is the paper's AWGN setup.
    pub channel: Option<(Tg4aModel, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BerCampaign {
    fn default() -> Self {
        BerCampaign {
            receiver: ReceiverConfig::default(),
            eb_rx: 1e-14,
            ebn0_db: (0..=14).step_by(2).map(|x| x as f64).collect(),
            bits_per_point: 2000,
            block_bits: 50,
            run_agc: true,
            channel: None,
            seed: 0xBE5,
        }
    }
}

impl BerCampaign {
    /// Runs the campaign with a fresh integrator per sweep point, fanning
    /// the Eb/N0 points over [`worker_threads`] workers. Each point draws
    /// from its own RNG stream ([`stream_seed`]`(self.seed, index)`), so
    /// the curve is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates integrator construction or reception failures (the
    /// lowest-Eb/N0 failure when several points fail).
    pub fn run(
        &self,
        label: &str,
        make_integrator: impl Fn() -> Result<Box<dyn IntegratorBlock>, IntegratorError> + Sync,
    ) -> Result<BerCurve, ReceiveError> {
        self.run_with_threads(label, worker_threads(), make_integrator)
    }

    /// [`run`](Self::run) with an explicit worker count (1 = serial).
    ///
    /// # Errors
    ///
    /// Propagates integrator construction or reception failures.
    pub fn run_with_threads(
        &self,
        label: &str,
        threads: usize,
        make_integrator: impl Fn() -> Result<Box<dyn IntegratorBlock>, IntegratorError> + Sync,
    ) -> Result<BerCurve, ReceiveError> {
        self.run_with_threads_counters(label, threads, make_integrator)
            .map(|(curve, _)| curve)
    }

    /// [`run_with_threads`](Self::run_with_threads), additionally returning
    /// the merged engine [`PerfCounters`] across every sweep point.
    ///
    /// The counters are returned *beside* the curve (not inside it) because
    /// [`BerCurve`] equality is bit-identity — counters carry wall time,
    /// which differs run to run even when the curve does not.
    ///
    /// # Errors
    ///
    /// Propagates integrator construction or reception failures.
    pub fn run_with_threads_counters(
        &self,
        label: &str,
        threads: usize,
        make_integrator: impl Fn() -> Result<Box<dyn IntegratorBlock>, IntegratorError> + Sync,
    ) -> Result<(BerCurve, PerfCounters), ReceiveError> {
        let outcomes = try_run_indexed(self.ebn0_db.len(), threads, |idx| {
            self.run_point(idx, &make_integrator)
        })?;
        let mut counters = PerfCounters::new();
        let mut points = Vec::with_capacity(outcomes.len());
        for (point, c) in outcomes {
            counters.merge(&c);
            points.push(point);
        }
        let warnings = points
            .iter()
            .filter(|p| p.rescued > 0)
            .map(|p| {
                format!(
                    "{label} @ {} dB: {} solver step(s) completed only via the \
                     convergence-rescue ladder",
                    p.ebn0_db, p.rescued
                )
            })
            .collect();
        Ok((
            BerCurve {
                label: label.to_string(),
                points,
                warnings,
            },
            counters,
        ))
    }

    /// Measures sweep point `idx` on the caller's thread, returning the
    /// point and the engine counters its integrator accumulated.
    fn run_point(
        &self,
        idx: usize,
        make_integrator: &(impl Fn() -> Result<Box<dyn IntegratorBlock>, IntegratorError> + Sync),
    ) -> Result<(BerPoint, PerfCounters), ReceiveError> {
        let ebn0 = self.ebn0_db[idx];
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(self.seed, idx as u64));
        let mut ppm = self.receiver.ppm;
        // Genie framing: preamble (for the AGC) directly followed by
        // the payload — no SFD, whose empty slot-0 symbols would sit
        // inside the AGC's measurement span and falsely kick the gain
        // up right before every payload.
        let preamble = self.receiver.agc.symbols + 2;
        let t0_clean = preamble as f64 * ppm.symbol_period;
        // `eb_rx` is the *mean received* per-bit energy: under fading
        // the transmit energy is scaled up by the mean path loss so the
        // receiver sits at its design point, and per-block realisations
        // fade around it — the standard fading-channel BER convention.
        // The probe stream depends only on the campaign seed, so every
        // point (and every thread) sees the same calibration.
        let mean_path_gain_sq = self
            .channel
            .map(|(model, d)| {
                let mut probe_rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x9A17);
                (0..32)
                    .map(|_| realize(model, d, &mut probe_rng).path_gain.powi(2))
                    .sum::<f64>()
                    / 32.0
            })
            .unwrap_or(1.0);
        ppm.pulse_energy = self.eb_rx / mean_path_gain_sq;
        let awgn = Awgn::from_ebn0_db(self.eb_rx, ebn0);

        let mut receiver = Receiver::new(
            ReceiverConfig {
                ppm,
                ..self.receiver.clone()
            },
            make_integrator().map_err(ReceiveError::Integrator)?,
        );
        // Warmup blocks: let the AGC slew from its reset code to the
        // operating point before any counted bit (the paper's receiver
        // settles its gain on the long preamble; genie blocks carry a
        // short one, so settling spans a few blocks).
        if self.run_agc {
            for _ in 0..3 {
                let payload: Vec<bool> = (0..self.block_bits).map(|_| rng.gen_bool(0.5)).collect();
                let air = modulate(&Packet::new(preamble, payload.clone()), &ppm);
                let (mut w, t0) = match self.channel {
                    None => (air, t0_clean),
                    Some((model, d)) => {
                        let ch = realize(model, d, &mut rng);
                        (ch.apply(&air), t0_clean + ch.propagation_delay)
                    }
                };
                awgn.add_to(&mut w, &mut rng);
                receiver.receive_genie(&w, t0, payload.len(), true)?;
            }
        }
        let mut errors = 0u64;
        let mut bits = 0u64;
        while (bits as usize) < self.bits_per_point {
            let n = self.block_bits.min(self.bits_per_point - bits as usize);
            let payload: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let air = modulate(&Packet::new(preamble, payload.clone()), &ppm);
            let (mut w, t0) = match self.channel {
                None => (air, t0_clean),
                Some((model, d)) => {
                    let ch = realize(model, d, &mut rng);
                    (ch.apply(&air), t0_clean + ch.propagation_delay)
                }
            };
            awgn.add_to(&mut w, &mut rng);
            let rep = receiver.receive_genie(&w, t0, n, self.run_agc)?;
            errors += rep
                .bits
                .iter()
                .zip(&payload)
                .filter(|(a, b)| a != b)
                .count() as u64;
            bits += n as u64;
        }
        Ok((
            BerPoint {
                ebn0_db: ebn0,
                errors,
                bits,
                rescued: receiver.integrator_rescue_events(),
            },
            receiver.integrator_counters(),
        ))
    }
}

/// Table-2-style TWR result row.
#[derive(Debug, Clone, PartialEq)]
pub struct TwrRow {
    /// Integrator label.
    pub label: String,
    /// Mean estimated distance, m.
    pub mean: f64,
    /// Standard deviation of the estimates, m.
    pub std_dev: f64,
    /// Offset from the true distance, m.
    pub offset: f64,
    /// Successful iterations.
    pub iterations: usize,
    /// Exchanges that failed to complete (lost packets).
    pub failures: usize,
}

/// One TWR exchange on its own RNG stream (`stream_seed(seed, index)`).
fn twr_exchange(
    cfg: &TwrConfig,
    seed: u64,
    index: usize,
    make_integrator: &(impl Fn() -> Box<dyn IntegratorBlock> + Sync),
) -> Result<TwrIteration, TwrError> {
    let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(seed, index as u64));
    uwb_txrx::transceiver::twr_iteration(cfg, make_integrator, &mut rng)
}

/// Folds per-exchange outcomes into a [`TwrRow`] (failures tolerated and
/// counted; errors only if *every* exchange failed).
fn summarize_twr(
    label: &str,
    true_distance: f64,
    outcomes: Vec<Result<TwrIteration, TwrError>>,
) -> Result<(TwrRow, Vec<TwrIteration>), TwrError> {
    let mut iters = Vec::with_capacity(outcomes.len());
    let mut failures = 0usize;
    let mut last_err = None;
    for o in outcomes {
        match o {
            Ok(it) => iters.push(it),
            Err(e) => {
                failures += 1;
                last_err = Some(e);
            }
        }
    }
    if iters.is_empty() {
        return Err(last_err.expect("at least one failure when none succeeded"));
    }
    let estimates: Vec<f64> = iters.iter().map(|r| r.distance_est).collect();
    let stats = RangingStats::from_estimates(&estimates);
    Ok((
        TwrRow {
            label: label.to_string(),
            mean: stats.mean,
            std_dev: stats.std_dev,
            offset: stats.offset(true_distance),
            iterations: stats.n,
            failures,
        },
        iters,
    ))
}

/// Runs the paper's Table 2 experiment for one integrator fidelity, with
/// the exchanges fanned over [`worker_threads`] workers (each on its own
/// [`stream_seed`] stream, so the row is thread-count independent).
///
/// # Errors
///
/// Fails only if *every* exchange fails (individual losses are counted).
pub fn twr_table_row(
    cfg: &TwrConfig,
    iterations: usize,
    label: &str,
    make_integrator: impl Fn() -> Box<dyn IntegratorBlock> + Sync,
    seed: u64,
) -> Result<(TwrRow, Vec<TwrIteration>), TwrError> {
    let outcomes = run_indexed(iterations, worker_threads(), |i| {
        twr_exchange(cfg, seed, i, &make_integrator)
    });
    summarize_twr(label, cfg.distance, outcomes)
}

/// Formats TWR rows as the paper's Table 2.
pub fn twr_table(rows: &[TwrRow], distance: f64) -> Table {
    let mut t = Table::new(
        &format!("Table 2. TWR simulation results @ {distance} m"),
        &[
            "Integrator",
            "Mean (m)",
            "Std (m)",
            "Offset (m)",
            "Iterations",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.label.clone(),
            format!("{:.2}", r.mean),
            format!("{:.2}", r.std_dev),
            format!("{:+.2}", r.offset),
            r.iterations.to_string(),
        ]);
    }
    t
}

/// Ranging accuracy over a sweep of true distances — the natural extension
/// of the paper's single-point Table 2 toward characterising the complete
/// design (its stated future work).
#[derive(Debug, Clone, PartialEq)]
pub struct TwrDistanceSweep {
    /// Base configuration; `distance` is overridden per point.
    pub base: TwrConfig,
    /// True distances to visit, m.
    pub distances: Vec<f64>,
    /// Exchanges per distance.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwrDistanceSweep {
    fn default() -> Self {
        TwrDistanceSweep {
            base: TwrConfig::default(),
            distances: vec![2.0, 5.0, 9.9, 15.0, 20.0],
            iterations: 5,
            seed: 0xD157,
        }
    }
}

impl TwrDistanceSweep {
    /// Runs the sweep; one [`TwrRow`] per distance (failed exchanges are
    /// tolerated and counted).
    ///
    /// The full `distance × iteration` grid is flattened into one task
    /// list so the worker pool stays busy even when `iterations` is small.
    /// Each exchange reuses the exact seed stream [`twr_table_row`] would
    /// give it (`stream_seed(seed + distance_index, iteration)`), so the
    /// sweep matches per-distance rows run standalone, at any thread count.
    ///
    /// # Errors
    ///
    /// Fails only if *every* exchange at some distance fails.
    pub fn run(
        &self,
        label: &str,
        make_integrator: impl Fn() -> Box<dyn IntegratorBlock> + Sync,
    ) -> Result<Vec<(f64, TwrRow)>, TwrError> {
        let iters = self.iterations;
        let outcomes = run_indexed(self.distances.len() * iters, worker_threads(), |j| {
            let (k, i) = (j / iters.max(1), j % iters.max(1));
            let cfg = TwrConfig {
                distance: self.distances[k],
                ..self.base.clone()
            };
            twr_exchange(&cfg, self.seed.wrapping_add(k as u64), i, &make_integrator)
        });
        let mut outcomes = outcomes.into_iter();
        let mut out = Vec::with_capacity(self.distances.len());
        for &d in &self.distances {
            let chunk: Vec<_> = outcomes.by_ref().take(iters).collect();
            let (row, _) = summarize_twr(&format!("{label} @ {d} m"), d, chunk)?;
            out.push((d, row));
        }
        Ok(out)
    }
}

/// Formats a distance sweep as a table.
pub fn distance_sweep_table(rows: &[(f64, TwrRow)]) -> Table {
    let mut t = Table::new(
        "TWR accuracy vs distance (CM1 LOS)",
        &[
            "True (m)",
            "Mean (m)",
            "Std (m)",
            "Offset (m)",
            "OK",
            "Lost",
        ],
    );
    for (d, r) in rows {
        t.push_row(vec![
            format!("{d:.1}"),
            format!("{:.2}", r.mean),
            format!("{:.2}", r.std_dev),
            format!("{:+.2}", r.offset),
            r.iterations.to_string(),
            r.failures.to_string(),
        ]);
    }
    t
}

/// One row of the CPU-time comparison (the paper's Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuTimeRow {
    /// Model label (IDEAL / VHDL-AMS / SPICE).
    pub label: String,
    /// Wall-clock time spent.
    pub wall: Duration,
    /// Simulated time, s.
    pub sim_time: f64,
    /// Bits demodulated during the run.
    pub bits: usize,
    /// Newton iterations spent inside the I&D block.
    pub newton_iterations: u64,
}

/// CPU-time campaign: the *same* 2-PPM reception scenario (fixed 0.05 ns
/// step) executed with each integrator fidelity, wall-clock measured —
/// the paper's Table 1 with our kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuTimeCampaign {
    /// Receiver configuration (its sample rate fixes the time step).
    pub receiver: ReceiverConfig,
    /// Target simulated time, s (the paper uses 30 µs).
    pub sim_time: f64,
    /// Quiet lead-in, s.
    pub lead_in: f64,
    /// Per-bit receive energy, V²s.
    pub eb_rx: f64,
    /// Eb/N0, dB.
    pub ebn0_db: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CpuTimeCampaign {
    fn default() -> Self {
        CpuTimeCampaign {
            receiver: ReceiverConfig::default(),
            sim_time: 30e-6,
            lead_in: 0.8e-6,
            eb_rx: 1e-14,
            ebn0_db: 30.0,
            seed: 0xC9,
        }
    }
}

impl CpuTimeCampaign {
    /// Payload bits that fill the configured simulated time.
    pub fn payload_bits(&self) -> usize {
        let ts = self.receiver.ppm.symbol_period;
        let preamble = 28usize;
        let used = self.lead_in + (preamble + SFD_PATTERN.len()) as f64 * ts + 0.3e-6;
        (((self.sim_time - used) / ts).floor().max(1.0)) as usize
    }

    /// Builds the scenario waveform (identical across fidelities for a
    /// given seed) and the payload it carries.
    pub fn scenario(&self) -> (Waveform, Vec<bool>) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut ppm = self.receiver.ppm;
        ppm.pulse_energy = self.eb_rx;
        let tx = Transmitter::new(ppm, 28);
        let payload: Vec<bool> = (0..self.payload_bits())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let air = tx.transmit(&payload);
        let total = (self.lead_in + air.duration() + 0.3e-6).max(self.sim_time);
        let mut w = Waveform::zeros(ppm.sample_rate, (total * ppm.sample_rate) as usize);
        w.add_at(&air, self.lead_in);
        Awgn::from_ebn0_db(self.eb_rx, self.ebn0_db).add_to(&mut w, &mut rng);
        (w, payload)
    }

    /// Runs the scenario with one integrator, measuring wall time.
    ///
    /// # Errors
    ///
    /// Propagates reception failures.
    pub fn run_one(
        &self,
        label: &str,
        integrator: Box<dyn IntegratorBlock>,
    ) -> Result<CpuTimeRow, ReceiveError> {
        let (w, payload) = self.scenario();
        let mut ppm = self.receiver.ppm;
        ppm.pulse_energy = self.eb_rx;
        let mut receiver = Receiver::new(
            ReceiverConfig {
                ppm,
                ..self.receiver.clone()
            },
            integrator,
        );
        let start = Instant::now();
        let rep = receiver.receive(&w, payload.len())?;
        let wall = start.elapsed();
        Ok(CpuTimeRow {
            label: label.to_string(),
            wall,
            sim_time: w.duration(),
            bits: rep.bits.len(),
            newton_iterations: receiver.integrator_newton_iterations(),
        })
    }

    /// Runs all three fidelities and formats the paper's Table 1.
    ///
    /// # Errors
    ///
    /// Propagates construction/reception failures.
    pub fn run_all(&self) -> Result<(Table, Vec<CpuTimeRow>), ReceiveError> {
        let mut rows = Vec::new();
        for (fidelity, label) in [
            (Fidelity::Circuit, "ELDO (SPICE netlist)"),
            (Fidelity::Behavioral, "VHDL-AMS (2-pole model)"),
            (Fidelity::Ideal, "IDEAL"),
        ] {
            let integrator = uwb_txrx::integrator::build_integrator(fidelity)
                .map_err(ReceiveError::Integrator)?;
            rows.push(self.run_one(label, integrator)?);
        }
        Ok((cpu_time_table(&rows), rows))
    }
}

/// Formats CPU rows as the paper's Table 1.
pub fn cpu_time_table(rows: &[CpuTimeRow]) -> Table {
    let mut t = Table::new(
        "Table 1. CPU time comparison",
        &["Model", "CPU Time", "Simulation time", "Ratio vs IDEAL"],
    );
    let ideal = rows
        .iter()
        .find(|r| r.label.contains("IDEAL"))
        .map(|r| r.wall.as_secs_f64())
        .unwrap_or(f64::NAN);
    for r in rows {
        let secs = r.wall.as_secs_f64();
        t.push_row(vec![
            r.label.clone(),
            format_duration(r.wall),
            format!("{:.1} us", r.sim_time * 1e6),
            format!("{:.2}x", secs / ideal),
        ]);
    }
    t
}

/// `59 m 33 s`-style rendering.
pub fn format_duration(d: Duration) -> String {
    let total = d.as_secs_f64();
    if total >= 60.0 {
        format!("{} m {:.0} s", (total / 60.0) as u64, total % 60.0)
    } else if total >= 1.0 {
        format!("{total:.2} s")
    } else {
        format!("{:.1} ms", total * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_txrx::integrator::IdealIntegrator;

    fn tiny_campaign() -> BerCampaign {
        BerCampaign {
            ebn0_db: vec![2.0, 14.0],
            bits_per_point: 60,
            block_bits: 30,
            ..Default::default()
        }
    }

    #[test]
    fn ber_campaign_is_monotone_ish() {
        let c = tiny_campaign();
        let curve = c
            .run("ideal", || Ok(Box::new(IdealIntegrator::default())))
            .expect("run");
        assert_eq!(curve.points.len(), 2);
        let lo = curve.points[0].ber();
        let hi = curve.points[1].ber();
        assert!(lo > hi, "BER falls with Eb/N0: {lo} vs {hi}");
        assert!(lo > 0.05, "low Eb/N0 is bad: {lo}");
        let s = curve.to_series();
        assert_eq!(s.points.len(), 2);
        assert!(s.points[1].1 > 0.0, "floored for log plots");
    }

    #[test]
    fn ber_campaign_deterministic_under_seed() {
        let c = tiny_campaign();
        let a = c
            .run("x", || Ok(Box::new(IdealIntegrator::default())))
            .unwrap();
        let b = c
            .run("x", || Ok(Box::new(IdealIntegrator::default())))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn campaign_counters_report_engine_work() {
        let c = tiny_campaign();
        let (curve, counters) = c
            .run_with_threads_counters("ideal", 1, || Ok(Box::new(IdealIntegrator::default())))
            .expect("run");
        assert_eq!(curve.points.len(), 2);
        assert!(
            counters.newton_iterations > 0,
            "BER phases must carry real engine work: {counters}"
        );
        assert!(counters.steps > 0, "{counters}");
        // The curve itself is identical to the counter-less entry point.
        let plain = c
            .run_with_threads("ideal", 1, || Ok(Box::new(IdealIntegrator::default())))
            .expect("run");
        assert_eq!(curve, plain);
    }

    #[test]
    fn campaign_demotes_rescued_points_to_warnings() {
        use spice::{FaultKind, FaultSchedule, RescuePolicy};
        use uwb_txrx::integrator::CircuitIntegrator;
        // An injected Newton divergence inside one sweep point must not fail
        // the campaign: the rescue ladder absorbs it, the point is demoted
        // to the warning channel and the curve still comes back complete.
        let c = BerCampaign {
            ebn0_db: vec![14.0],
            bits_per_point: 8,
            block_bits: 8,
            ..Default::default()
        };
        let curve = c
            .run("circuit", || {
                let mut integ = CircuitIntegrator::with_defaults()?;
                // Pin the policy explicitly so the test is independent of
                // the UWB_AMS_RESCUE environment override.
                integ
                    .simulator_mut()
                    .set_rescue_policy(RescuePolicy::default());
                integ.simulator_mut().set_fault_schedule(
                    FaultSchedule::new(7).with_fault(5, FaultKind::NewtonDivergence),
                );
                Ok(Box::new(integ))
            })
            .expect("campaign finishes despite the injected divergence");
        assert_eq!(curve.points.len(), 1);
        assert!(
            curve.points[0].rescued >= 1,
            "the injected fault must surface as a rescued count"
        );
        assert_eq!(curve.warnings.len(), 1, "{:?}", curve.warnings);
        assert!(
            curve.warnings[0].contains("convergence-rescue ladder"),
            "{}",
            curve.warnings[0]
        );
    }

    #[test]
    fn cpu_campaign_scales_bits_to_sim_time() {
        let c = CpuTimeCampaign {
            sim_time: 10e-6,
            ..Default::default()
        };
        let bits = c.payload_bits();
        assert!(bits > 100, "bits {bits}");
        let (w, payload) = c.scenario();
        assert_eq!(payload.len(), bits);
        assert!(w.duration() >= 10e-6);
    }

    #[test]
    fn cpu_row_measures_ideal_run() {
        let c = CpuTimeCampaign {
            sim_time: 6e-6,
            ..Default::default()
        };
        let row = c
            .run_one("IDEAL", Box::new(IdealIntegrator::default()))
            .expect("run");
        assert!(row.wall > Duration::ZERO);
        assert!(row.bits > 0);
        assert!(row.newton_iterations > 0);
    }

    #[test]
    fn fading_campaign_runs_and_degrades_vs_awgn() {
        use uwb_phy::channel::Tg4aModel;
        use uwb_phy::PpmConfig;
        use uwb_txrx::receiver::ReceiverConfig;
        let receiver = ReceiverConfig {
            ppm: PpmConfig {
                symbol_period: 256e-9,
                ..PpmConfig::default()
            },
            demod_window: 8e-9,
            ..ReceiverConfig::default()
        };
        let base = BerCampaign {
            receiver,
            ebn0_db: vec![16.0],
            bits_per_point: 100,
            block_bits: 25,
            ..Default::default()
        };
        let awgn = base
            .run("awgn", || Ok(Box::new(IdealIntegrator::default())))
            .expect("awgn");
        let faded = BerCampaign {
            channel: Some((Tg4aModel::Cm1, 5.0)),
            ..base
        }
        .run("cm1", || Ok(Box::new(IdealIntegrator::default())))
        .expect("cm1");
        assert!(
            faded.points[0].errors >= awgn.points[0].errors,
            "fading does not beat AWGN: {} vs {}",
            faded.points[0].errors,
            awgn.points[0].errors
        );
    }

    #[test]
    fn distance_sweep_visits_each_point() {
        use uwb_txrx::integrator::IdealIntegrator;
        let sweep = TwrDistanceSweep {
            distances: vec![5.0, 9.9],
            iterations: 1,
            ..Default::default()
        };
        let rows = sweep
            .run("ideal", || Box::new(IdealIntegrator::default()))
            .expect("sweep");
        assert_eq!(rows.len(), 2);
        for (d, row) in &rows {
            assert!((row.mean - d).abs() < 3.0, "at {d} m: {}", row.mean);
        }
        let t = distance_sweep_table(&rows);
        assert!(t.to_string().contains("9.9"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_secs(3573)), "59 m 33 s");
        assert_eq!(format_duration(Duration::from_millis(550)), "550.0 ms");
        assert_eq!(format_duration(Duration::from_secs_f64(2.25)), "2.25 s");
    }

    #[test]
    fn tables_render() {
        let rows = vec![
            CpuTimeRow {
                label: "IDEAL".into(),
                wall: Duration::from_secs(551),
                sim_time: 30e-6,
                bits: 400,
                newton_iterations: 1,
            },
            CpuTimeRow {
                label: "ELDO (SPICE netlist)".into(),
                wall: Duration::from_secs(3573),
                sim_time: 30e-6,
                bits: 400,
                newton_iterations: 1,
            },
        ];
        let t = cpu_time_table(&rows);
        let s = t.to_string();
        assert!(s.contains("6.48x"), "{s}");
        let tw = twr_table(
            &[TwrRow {
                label: "IDEAL".into(),
                mean: 10.10,
                std_dev: 0.49,
                offset: 0.20,
                iterations: 10,
                failures: 0,
            }],
            9.9,
        );
        assert!(tw.to_string().contains("10.10"));
    }
}
