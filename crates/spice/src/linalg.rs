//! Dense LU solves for MNA systems, real and complex.
//!
//! MNA matrices here are dense `Vec`-backed row-major squares. The circuits
//! in this repository are tens of nodes, where dense partial-pivot LU is
//! simpler than and competitive with sparse machinery.

use num_complex::Complex64;

/// Dense row-major real matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero square matrix of order `n`.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Order of the matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Adds `v` at `(r, c)` (the MNA "stamp" operation).
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }

    /// Raw row-major storage (for factorization caching / comparison).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Solves `self · x = b`, overwriting `b` with `x`. Destroys `self`.
    ///
    /// Returns `false` if the matrix is numerically singular.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> bool {
        let n = self.n;
        assert_eq!(b.len(), n);
        for col in 0..n {
            let mut piv = col;
            let mut mag = self.data[col * n + col].abs();
            for r in (col + 1)..n {
                let m = self.data[r * n + col].abs();
                if m > mag {
                    mag = m;
                    piv = r;
                }
            }
            if mag < 1e-300 {
                return false;
            }
            if piv != col {
                for c in 0..n {
                    self.data.swap(col * n + c, piv * n + c);
                }
                b.swap(col, piv);
            }
            let pivot = self.data[col * n + col];
            for r in (col + 1)..n {
                let f = self.data[r * n + col] / pivot;
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = self.data[col * n + c];
                    self.data[r * n + c] -= f * v;
                }
                b[r] -= f * b[col];
            }
        }
        for col in (0..n).rev() {
            let mut acc = b[col];
            for c in (col + 1)..n {
                acc -= self.data[col * n + c] * b[c];
            }
            b[col] = acc / self.data[col * n + col];
        }
        true
    }
}

/// A reusable partial-pivot LU factorization.
///
/// Unlike [`Matrix::solve_in_place`], which destroys the matrix per solve,
/// this keeps the factors and pivot sequence so one factorization ( O(n³) )
/// can serve many right-hand sides ( O(n²) each ) — the transient fast
/// path reuses it across Newton iterations and time steps whenever the
/// assembled Jacobian is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactors {
    n: usize,
    /// Packed L (unit diagonal, below) and U (on/above diagonal).
    lu: Vec<f64>,
    /// Row swap applied at each elimination column.
    piv: Vec<usize>,
}

impl LuFactors {
    /// Empty factorization workspace for order-`n` systems.
    pub fn new(n: usize) -> Self {
        LuFactors {
            n,
            lu: vec![0.0; n * n],
            piv: vec![0; n],
        }
    }

    /// Factors `a` (which is left untouched), replacing any previous
    /// factorization. Returns `false` if `a` is numerically singular.
    pub fn factorize(&mut self, a: &Matrix) -> bool {
        let n = a.n;
        if self.n != n {
            self.n = n;
            self.lu = vec![0.0; n * n];
            self.piv = vec![0; n];
        }
        self.lu.copy_from_slice(&a.data);
        let lu = &mut self.lu;
        for col in 0..n {
            let mut piv = col;
            let mut mag = lu[col * n + col].abs();
            for r in (col + 1)..n {
                let m = lu[r * n + col].abs();
                if m > mag {
                    mag = m;
                    piv = r;
                }
            }
            if mag < 1e-300 {
                return false;
            }
            self.piv[col] = piv;
            if piv != col {
                for c in 0..n {
                    lu.swap(col * n + c, piv * n + c);
                }
            }
            let pivot = lu[col * n + col];
            for r in (col + 1)..n {
                let f = lu[r * n + col] / pivot;
                lu[r * n + col] = f;
                if f == 0.0 {
                    continue;
                }
                for c in (col + 1)..n {
                    let v = lu[col * n + c];
                    lu[r * n + c] -= f * v;
                }
            }
        }
        true
    }

    /// Solves `A·x = b` with the stored factors, overwriting `b` with `x`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` disagrees with the factored order.
    pub fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n);
        // Apply the recorded row swaps, then forward/back substitution.
        for col in 0..n {
            let piv = self.piv[col];
            if piv != col {
                b.swap(col, piv);
            }
        }
        for col in 0..n {
            let bc = b[col];
            if bc != 0.0 {
                for r in (col + 1)..n {
                    b[r] -= self.lu[r * n + col] * bc;
                }
            }
        }
        for col in (0..n).rev() {
            let mut acc = b[col];
            for c in (col + 1)..n {
                acc -= self.lu[col * n + c] * b[c];
            }
            b[col] = acc / self.lu[col * n + col];
        }
    }
}

/// Dense row-major complex matrix (for AC analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    n: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Zero square complex matrix of order `n`.
    pub fn zeros(n: usize) -> Self {
        CMatrix {
            n,
            data: vec![Complex64::new(0.0, 0.0); n * n],
        }
    }

    /// Order of the matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Adds `v` at `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: Complex64) {
        self.data[r * self.n + c] += v;
    }

    /// Adds a real value at `(r, c)`.
    #[inline]
    pub fn add_re(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += Complex64::new(v, 0.0);
    }

    /// Adds a purely imaginary value at `(r, c)`.
    #[inline]
    pub fn add_im(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += Complex64::new(0.0, v);
    }

    /// Solves `self · x = b`, overwriting `b`. Destroys `self`.
    ///
    /// Returns `false` if the matrix is numerically singular.
    pub fn solve_in_place(&mut self, b: &mut [Complex64]) -> bool {
        let n = self.n;
        assert_eq!(b.len(), n);
        for col in 0..n {
            let mut piv = col;
            let mut mag = self.data[col * n + col].norm_sqr();
            for r in (col + 1)..n {
                let m = self.data[r * n + col].norm_sqr();
                if m > mag {
                    mag = m;
                    piv = r;
                }
            }
            if mag < 1e-300 {
                return false;
            }
            if piv != col {
                for c in 0..n {
                    self.data.swap(col * n + c, piv * n + c);
                }
                b.swap(col, piv);
            }
            let pivot = self.data[col * n + col];
            for r in (col + 1)..n {
                let f = self.data[r * n + col] / pivot;
                if f == Complex64::new(0.0, 0.0) {
                    continue;
                }
                for c in col..n {
                    let v = self.data[col * n + c];
                    self.data[r * n + c] -= f * v;
                }
                b[r] -= f * b[col];
            }
        }
        for col in (0..n).rev() {
            let mut acc = b[col];
            for c in (col + 1)..n {
                acc -= self.data[col * n + c] * b[c];
            }
            b[col] = acc / self.data[col * n + col];
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_solve_2x2() {
        let mut m = Matrix::zeros(2);
        m.add(0, 0, 3.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 2.0);
        let mut b = vec![9.0, 8.0];
        assert!(m.solve_in_place(&mut b));
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn real_singular_detected() {
        let mut m = Matrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 1.0);
        let mut b = vec![1.0, 1.0];
        assert!(!m.solve_in_place(&mut b));
    }

    #[test]
    fn stamps_accumulate() {
        let mut m = Matrix::zeros(1);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.0);
        assert_eq!(m.get(0, 0), 3.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn lu_factors_match_direct_solve() {
        // Pseudo-random but deterministic well-conditioned system.
        let n = 7;
        let mut m = Matrix::zeros(n);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for r in 0..n {
            for c in 0..n {
                m.add(r, c, next());
            }
            m.add(r, r, 4.0); // diagonally dominant
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();

        let mut lu = LuFactors::new(n);
        assert!(lu.factorize(&m));
        let mut x_lu = b.clone();
        lu.solve(&mut x_lu);

        let mut m2 = m.clone();
        let mut x_direct = b.clone();
        assert!(m2.solve_in_place(&mut x_direct));
        for (a, d) in x_lu.iter().zip(&x_direct) {
            assert!((a - d).abs() < 1e-12, "{a} vs {d}");
        }

        // Factors are reusable: a second RHS still solves correctly.
        let b2: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut x2 = b2.clone();
        lu.solve(&mut x2);
        // Residual check ||A x − b||.
        for r in 0..n {
            let mut acc = 0.0;
            for c in 0..n {
                acc += m.get(r, c) * x2[c];
            }
            assert!((acc - b2[r]).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_factors_detect_singular() {
        let mut m = Matrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        let mut lu = LuFactors::new(2);
        assert!(!lu.factorize(&m));
    }

    #[test]
    fn complex_solve_rc_divider() {
        // v / (R + 1/jwC) * (1/jwC) at w where |Zc| = R → |H| = 1/sqrt(2).
        let r = 1e3;
        let c = 1e-9;
        let w = 1.0 / (r * c);
        let mut m = CMatrix::zeros(1);
        // Node equation: (1/R) (v - 1) + jwC v = 0 → v (1/R + jwC) = 1/R.
        m.add_re(0, 0, 1.0 / r);
        m.add_im(0, 0, w * c);
        let mut b = vec![Complex64::new(1.0 / r, 0.0)];
        assert!(m.solve_in_place(&mut b));
        let mag = b[0].norm();
        assert!((mag - 1.0 / 2f64.sqrt()).abs() < 1e-9, "mag = {mag}");
        let phase = b[0].arg().to_degrees();
        assert!((phase + 45.0).abs() < 1e-6, "phase = {phase}");
    }

    #[test]
    fn complex_singular_detected() {
        let mut m = CMatrix::zeros(2);
        m.add_re(0, 0, 1.0);
        m.add_re(1, 0, 1.0);
        let mut b = vec![Complex64::new(1.0, 0.0); 2];
        assert!(!m.solve_in_place(&mut b));
    }
}
