//! Additive white Gaussian noise with Eb/N0 calibration.
//!
//! For a sampled waveform at rate `fs`, white noise of two-sided PSD `N0/2`
//! has per-sample variance `σ² = (N0/2)·fs`. Eb/N0 sweeps therefore fix
//! `N0 = Eb / (Eb/N0)` from the known per-bit energy and derive σ.

use crate::waveform::Waveform;
use rand::Rng;

/// AWGN parameterised by noise spectral density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Awgn {
    /// One-sided noise power spectral density `N0`, V²s.
    pub n0: f64,
}

impl Awgn {
    /// Noise source with one-sided PSD `n0`.
    pub fn new(n0: f64) -> Self {
        Awgn { n0 }
    }

    /// Noise calibrated so a signal of per-bit energy `eb` sees the given
    /// `Eb/N0` (linear ratio, not dB).
    pub fn from_ebn0(eb: f64, ebn0_linear: f64) -> Self {
        Awgn {
            n0: eb / ebn0_linear,
        }
    }

    /// Noise calibrated from an `Eb/N0` given in dB.
    pub fn from_ebn0_db(eb: f64, ebn0_db: f64) -> Self {
        Self::from_ebn0(eb, 10f64.powf(ebn0_db / 10.0))
    }

    /// Per-sample standard deviation at sample rate `fs`.
    pub fn sigma(&self, fs: f64) -> f64 {
        (0.5 * self.n0 * fs).sqrt()
    }

    /// Adds noise to `w` in place.
    pub fn add_to(&self, w: &mut Waveform, rng: &mut impl Rng) {
        let sigma = self.sigma(w.sample_rate());
        for s in w.samples_mut() {
            *s += sigma * standard_normal(rng);
        }
    }
}

/// One standard normal draw (Box-Muller).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sigma_scales_with_rate_and_n0() {
        let a = Awgn::new(4e-18);
        assert!((a.sigma(20e9) - (0.5f64 * 4e-18 * 20e9).sqrt()).abs() < 1e-18);
        let b = Awgn::from_ebn0_db(1e-15, 10.0);
        assert!((b.n0 - 1e-16).abs() < 1e-28);
    }

    #[test]
    fn measured_variance_matches_sigma() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let awgn = Awgn::new(1e-18);
        let mut w = Waveform::zeros(20e9, 100_000);
        awgn.add_to(&mut w, &mut rng);
        let var: f64 = w.samples().iter().map(|x| x * x).sum::<f64>() / w.len() as f64;
        let expect = 0.5 * 1e-18 * 20e9;
        assert!(
            (var - expect).abs() / expect < 0.02,
            "var {var} vs {expect}"
        );
    }

    #[test]
    fn noise_mean_is_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let awgn = Awgn::new(1e-18);
        let mut w = Waveform::zeros(20e9, 100_000);
        awgn.add_to(&mut w, &mut rng);
        let mean: f64 = w.samples().iter().sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 3.0 * awgn.sigma(20e9) / (w.len() as f64).sqrt() * 2.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
