//! Table 2 — Two-Way Ranging at 9.9 m, IDEAL vs SPICE integrator.
//!
//! Regenerates the paper's Table 2: 10 TWR iterations at a single distance
//! point (9.9 m) over the CM1 LOS channel with the recommended path loss,
//! once with the IDEAL integrator and once with the transistor-level one.
//!
//! Paper: IDEAL mean 10.10 m / spread 0.49 m; ELDO mean 11.16 m / spread
//! 0.10 m — i.e. the circuit ranks with the *larger offset* (AGC cannot
//! match both the integrator input range and the ADC energy range) and the
//! *smaller spread* (noise shaping).
//!
//! Default: 10 iterations for both fidelities (`UWB_AMS_BENCH=full` is the
//! same — this experiment is already the paper's full size).

use uwb_ams_core::metrics::{twr_table, twr_table_row};
use uwb_txrx::integrator::{build_integrator, Fidelity};
use uwb_txrx::transceiver::TwrConfig;

fn main() {
    let cfg = TwrConfig::default();
    let iterations = 10;
    println!(
        "=== Table 2: TWR @ {} m, CM1 LOS, {} iterations ===\n",
        cfg.distance, iterations
    );

    let mut rows = Vec::new();
    for f in [Fidelity::Ideal, Fidelity::Circuit] {
        let t0 = std::time::Instant::now();
        let (row, iters) = twr_table_row(
            &cfg,
            iterations,
            &f.to_string(),
            || build_integrator(f).expect("integrator"),
            0x7AB1E2,
        )
        .expect("campaign");
        println!("{f} ({:?}):", t0.elapsed());
        for (i, it) in iters.iter().enumerate() {
            println!(
                "  iter {:>2}: {:.2} m (anchor errors {:+.2} ns / {:+.2} ns)",
                i + 1,
                it.distance_est,
                it.responder_anchor_error * 1e9,
                it.initiator_anchor_error * 1e9
            );
        }
        rows.push(row);
    }

    println!("\n{}", twr_table(&rows, cfg.distance));
    println!(
        "paper @ 9.9 m: IDEAL 10.10 m / 0.49 m; ELDO 11.16 m / 0.10 m\n\
         (shape: circuit offset > ideal offset, circuit spread < ideal spread)"
    );
}
