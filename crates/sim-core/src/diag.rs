//! Shared diagnostic primitives: severities and source spans.
//!
//! The static-analysis layer (`crates/lint`) and both simulation engines
//! attach findings to *somewhere* — a deck line, a named device, a block
//! port. This module owns the two vocabulary types every layer agrees on:
//! [`Severity`] orders findings, [`SourceSpan`] points back into the
//! artefact they came from. Keeping them here (rather than in the lint
//! crate) lets low-level engines annotate their own errors without a
//! dependency on the analyzer.

use std::fmt;

/// How serious a diagnostic finding is.
///
/// Ordered so `Error > Warning > Info` — `report.worst()` style queries
/// can use `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth surfacing, never blocks anything.
    Info,
    /// Suspicious but simulatable; a deny-list may promote it.
    Warning,
    /// Provably broken (or nonphysical): simulation would fail or lie.
    Error,
}

impl Severity {
    /// Lowercase label used in rendered reports (`error`, `warning`, `info`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where in a source artefact a diagnostic points.
///
/// Both fields are optional: circuits built through the API have no deck
/// line, and synthetic artefacts (a block graph assembled in code) have no
/// file-like name at all.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SourceSpan {
    /// The artefact's name: a deck title, a graph name, a bench label.
    pub artefact: Option<String>,
    /// 1-based line number in a textual source, when one exists.
    pub line: Option<usize>,
}

impl SourceSpan {
    /// A span with neither artefact nor line — "somewhere in the input".
    pub const UNKNOWN: SourceSpan = SourceSpan {
        artefact: None,
        line: None,
    };

    /// Span pointing at a line of a named artefact.
    pub fn line_of(artefact: impl Into<String>, line: usize) -> Self {
        SourceSpan {
            artefact: Some(artefact.into()),
            line: Some(line),
        }
    }

    /// Span naming an artefact without a line (API-built structures).
    pub fn artefact(name: impl Into<String>) -> Self {
        SourceSpan {
            artefact: Some(name.into()),
            line: None,
        }
    }

    /// Span with only a line number (anonymous deck text).
    pub fn line(line: usize) -> Self {
        SourceSpan {
            artefact: None,
            line: Some(line),
        }
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.artefact, self.line) {
            (Some(a), Some(l)) => write!(f, "{a}:{l}"),
            (Some(a), None) => f.write_str(a),
            (None, Some(l)) => write!(f, "line {l}"),
            (None, None) => f.write_str("<unknown>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.max(Severity::Info), Severity::Error);
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn span_renders_every_shape() {
        assert_eq!(SourceSpan::line_of("deck.cir", 7).to_string(), "deck.cir:7");
        assert_eq!(SourceSpan::artefact("bench").to_string(), "bench");
        assert_eq!(SourceSpan::line(3).to_string(), "line 3");
        assert_eq!(SourceSpan::UNKNOWN.to_string(), "<unknown>");
    }
}
