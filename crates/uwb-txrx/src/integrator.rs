//! The Integrate & Dump block at three fidelities — the substitute-and-play
//! seam the paper's methodology revolves around.
//!
//! All three implementations sit behind [`IntegratorBlock`] with an
//! electrically compatible interface (differential input voltage, integrate
//! /dump control, differential output voltage), so the enclosing receiver
//! is unchanged when the fidelity is swapped:
//!
//! * [`IdealIntegrator`] — Phase II: `vo' = K·vin` solved by the AMS kernel,
//! * [`BehavioralIntegrator`] — Phase IV: the calibrated two-pole model
//!   (optionally with the input linear-range clip the paper found missing),
//! * [`CircuitIntegrator`] — Phase III: the 31-transistor netlist stepped by
//!   the transistor-level simulator inside the system testbench.

use ams_kernel::analog::{IdealGatedIntegrator, TwoPoleGatedModel};
use ams_kernel::solver::{ImplicitSolver, SolveError, TransientState};
use spice::library::{integrate_dump_testbench, IntegrateDumpParams, IntegrateDumpTestbench};
use spice::tran::{TranOptions, TransientSimulator};
use spice::SpiceError;
use std::fmt;

/// Abstraction level of a block implementation (the paper's phase ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Phase II: ideal behavioural equations.
    Ideal,
    /// Phase IV: calibrated behavioural model with circuit-derived poles.
    Behavioral,
    /// Phase III: transistor-level netlist in the loop.
    Circuit,
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fidelity::Ideal => write!(f, "IDEAL"),
            Fidelity::Behavioral => write!(f, "VHDL-AMS model"),
            Fidelity::Circuit => write!(f, "SPICE netlist"),
        }
    }
}

/// Failures from an integrator step.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegratorError {
    /// The behavioural solver failed.
    Solver(SolveError),
    /// The transistor-level simulator failed.
    Circuit(SpiceError),
}

impl fmt::Display for IntegratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegratorError::Solver(e) => write!(f, "behavioural solver: {e}"),
            IntegratorError::Circuit(e) => write!(f, "circuit simulator: {e}"),
        }
    }
}

impl std::error::Error for IntegratorError {}

impl From<SolveError> for IntegratorError {
    fn from(e: SolveError) -> Self {
        IntegratorError::Solver(e)
    }
}

impl From<SpiceError> for IntegratorError {
    fn from(e: SpiceError) -> Self {
        IntegratorError::Circuit(e)
    }
}

/// Common interface of every I&D implementation.
///
/// The enclosing receiver only ever talks to this trait — swapping the
/// implementation is the paper's "substitute-and-play".
pub trait IntegratorBlock {
    /// Which phase this implementation realises.
    fn fidelity(&self) -> Fidelity;

    /// Sets the control rails: `true` integrates, `false` dumps.
    fn set_control(&mut self, integrate: bool);

    /// Advances by `dt` with differential input `vin`; returns the
    /// differential output voltage after the step.
    ///
    /// # Errors
    ///
    /// Propagates solver/circuit failures.
    fn step(&mut self, dt: f64, vin: f64) -> Result<f64, IntegratorError>;

    /// Differential output voltage right now.
    fn output(&self) -> f64;

    /// Cumulative Newton iterations — the CPU-cost proxy behind Table 1.
    fn newton_iterations(&self) -> u64;

    /// Successful convergence rescues absorbed so far (timestep cuts, DC
    /// homotopy escalations). Zero for implementations without a rescue
    /// ladder; the flow layer demotes nonzero counts to warnings.
    fn rescue_events(&self) -> u64 {
        0
    }

    /// Snapshot of the underlying engine's full work counters (steps,
    /// Newton iterations, factorizations, wall time), for campaign-level
    /// aggregation. All-zero for implementations without an engine.
    fn perf_counters(&self) -> ams_kernel::PerfCounters {
        ams_kernel::PerfCounters::new()
    }
}

/// Default ideal/behavioural integration constant `K` (1/s), matched to the
/// default circuit's `gm/C` so the three fidelities share one design scale.
pub const DEFAULT_K: f64 = 9.0e7;

/// Default calibrated mid-band gain, dB (measured on the default circuit).
pub const DEFAULT_GAIN_DB: f64 = 24.1;
/// Default calibrated first pole, Hz.
pub const DEFAULT_POLE1_HZ: f64 = 0.887e6;
/// Default calibrated second pole, Hz.
pub const DEFAULT_POLE2_HZ: f64 = 5.0e9;
/// Default input linear range (differential), V — the measured ≈1 dB
/// compression point of the default circuit. The paper's cell quotes
/// ~0.1 V; our source-follower/diode input is inherently more linear, so
/// the same qualitative effect (the plain two-pole model missing the
/// input-range distortion) appears at correspondingly larger drive.
pub const DEFAULT_INPUT_RANGE: f64 = 0.5;

/// Phase II ideal gated integrator solved by the AMS kernel.
#[derive(Debug)]
pub struct IdealIntegrator {
    model: IdealGatedIntegrator,
    solver: ImplicitSolver,
    state: TransientState,
    integrate: bool,
}

impl IdealIntegrator {
    /// Ideal integrator with constant `k` (1/s).
    pub fn new(k: f64) -> Self {
        let model = IdealGatedIntegrator::new(k);
        let state = TransientState::from_model(&model);
        IdealIntegrator {
            model,
            solver: ImplicitSolver::default(),
            state,
            integrate: true,
        }
    }
}

impl Default for IdealIntegrator {
    fn default() -> Self {
        Self::new(DEFAULT_K)
    }
}

impl IntegratorBlock for IdealIntegrator {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Ideal
    }

    fn set_control(&mut self, integrate: bool) {
        self.integrate = integrate;
    }

    fn step(&mut self, dt: f64, vin: f64) -> Result<f64, IntegratorError> {
        let sel = if self.integrate { 1.0 } else { 0.0 };
        self.solver
            .step(&self.model, 0.0, dt, &[vin, sel, 0.0], &mut self.state)?;
        Ok(self.state.x[0])
    }

    fn output(&self) -> f64 {
        self.state.x[0]
    }

    fn newton_iterations(&self) -> u64 {
        self.solver.newton_iterations()
    }

    fn perf_counters(&self) -> ams_kernel::PerfCounters {
        *self.solver.counters()
    }
}

/// Phase IV calibrated two-pole behavioural integrator.
#[derive(Debug)]
pub struct BehavioralIntegrator {
    model: TwoPoleGatedModel,
    solver: ImplicitSolver,
    state: TransientState,
    integrate: bool,
}

impl BehavioralIntegrator {
    /// Behavioural integrator from a calibrated model.
    pub fn new(model: TwoPoleGatedModel) -> Self {
        let state = TransientState::from_model(&model);
        BehavioralIntegrator {
            model,
            solver: ImplicitSolver::default(),
            state,
            integrate: true,
        }
    }

    /// The paper's Phase IV listing: gain and two poles, no input clip.
    pub fn from_default_calibration() -> Self {
        Self::new(TwoPoleGatedModel::from_db_and_hz(
            DEFAULT_GAIN_DB,
            DEFAULT_POLE1_HZ,
            DEFAULT_POLE2_HZ,
        ))
    }

    /// Default calibration plus the input linear-range clip (the refinement
    /// the paper flags as the model's missing effect in Figure 5).
    pub fn with_input_clip() -> Self {
        Self::new(
            TwoPoleGatedModel::from_db_and_hz(DEFAULT_GAIN_DB, DEFAULT_POLE1_HZ, DEFAULT_POLE2_HZ)
                .with_input_clip(DEFAULT_INPUT_RANGE),
        )
    }
}

impl Default for BehavioralIntegrator {
    fn default() -> Self {
        Self::from_default_calibration()
    }
}

impl IntegratorBlock for BehavioralIntegrator {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Behavioral
    }

    fn set_control(&mut self, integrate: bool) {
        self.integrate = integrate;
    }

    fn step(&mut self, dt: f64, vin: f64) -> Result<f64, IntegratorError> {
        let sel = if self.integrate { 1.0 } else { 0.0 };
        self.solver
            .step(&self.model, 0.0, dt, &[vin, sel, 0.0], &mut self.state)?;
        Ok(self.state.x[1])
    }

    fn output(&self) -> f64 {
        self.state.x[1]
    }

    fn newton_iterations(&self) -> u64 {
        self.solver.newton_iterations()
    }

    fn perf_counters(&self) -> ams_kernel::PerfCounters {
        *self.solver.counters()
    }
}

/// Phase III: the 31-transistor netlist inside the system loop.
#[derive(Debug)]
pub struct CircuitIntegrator {
    sim: TransientSimulator,
    bench: IntegrateDumpTestbench,
    integrate: bool,
}

impl CircuitIntegrator {
    /// Builds the circuit integrator and solves its operating point.
    ///
    /// # Errors
    ///
    /// Propagates DC convergence failures.
    pub fn new(params: &IntegrateDumpParams) -> Result<Self, IntegratorError> {
        let bench = integrate_dump_testbench(params)?;
        let mut externals = vec![0.0; bench.circuit.num_externals];
        externals[bench.slot_inp] = bench.input_cm;
        externals[bench.slot_inm] = bench.input_cm;
        externals[bench.slot_controlp] = params.vdd;
        externals[bench.slot_controlm] = 0.0;
        let sim = TransientSimulator::with_externals(
            bench.circuit.clone(),
            TranOptions::default(),
            externals,
        )?;
        Ok(CircuitIntegrator {
            sim,
            bench,
            integrate: true,
        })
    }

    /// Builds with default (paper-calibrated) parameters.
    ///
    /// # Errors
    ///
    /// Propagates DC convergence failures.
    pub fn with_defaults() -> Result<Self, IntegratorError> {
        Self::new(&IntegrateDumpParams::default())
    }

    /// Access to the underlying transistor-level simulator (probing).
    pub fn simulator(&self) -> &TransientSimulator {
        &self.sim
    }

    /// Mutable access to the simulator (arming fault-injection schedules).
    pub fn simulator_mut(&mut self) -> &mut TransientSimulator {
        &mut self.sim
    }
}

impl IntegratorBlock for CircuitIntegrator {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Circuit
    }

    fn set_control(&mut self, integrate: bool) {
        self.integrate = integrate;
        let vdd = 1.8;
        // The testbench constructor allocated these slots itself, so the
        // writes cannot fail.
        let (vp, vm) = if integrate { (vdd, 0.0) } else { (0.0, vdd) };
        self.sim
            .set_external(self.bench.slot_controlp, vp)
            .expect("testbench control slot");
        self.sim
            .set_external(self.bench.slot_controlm, vm)
            .expect("testbench control slot");
    }

    fn step(&mut self, dt: f64, vin: f64) -> Result<f64, IntegratorError> {
        let cm = self.bench.input_cm;
        self.sim
            .set_external(self.bench.slot_inp, cm + 0.5 * vin)
            .expect("testbench input slot");
        self.sim
            .set_external(self.bench.slot_inm, cm - 0.5 * vin)
            .expect("testbench input slot");
        self.sim.step(dt)?;
        Ok(self.output())
    }

    fn output(&self) -> f64 {
        self.sim
            .voltage_diff(self.bench.ports.out_intp, self.bench.ports.out_intm)
    }

    fn newton_iterations(&self) -> u64 {
        self.sim.newton_iterations()
    }

    fn rescue_events(&self) -> u64 {
        self.sim.rescue_events()
    }

    fn perf_counters(&self) -> ams_kernel::PerfCounters {
        *self.sim.counters()
    }
}

/// Constructs an integrator of the requested fidelity with the shared
/// default design scale.
///
/// # Errors
///
/// Propagates circuit operating-point failures for [`Fidelity::Circuit`].
pub fn build_integrator(f: Fidelity) -> Result<Box<dyn IntegratorBlock>, IntegratorError> {
    Ok(match f {
        Fidelity::Ideal => Box::new(IdealIntegrator::default()),
        Fidelity::Behavioral => Box::new(BehavioralIntegrator::default()),
        Fidelity::Circuit => Box::new(CircuitIntegrator::with_defaults()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cycle(intg: &mut dyn IntegratorBlock, vin: f64, n: usize, dt: f64) -> f64 {
        let mut out = 0.0;
        for _ in 0..n {
            out = intg.step(dt, vin).expect("step");
        }
        out
    }

    #[test]
    fn ideal_matches_closed_form() {
        let mut i = IdealIntegrator::new(1e8);
        // 0.05 V for 20 ns at K = 1e8 → 0.1 V.
        let out = run_cycle(&mut i, 0.05, 400, 50e-12);
        assert!((out - 0.1).abs() < 1e-4, "out = {out}");
        i.set_control(false);
        let dumped = run_cycle(&mut i, 0.05, 10, 50e-12);
        assert!(dumped.abs() < 1e-6);
    }

    #[test]
    fn behavioral_tracks_ideal_in_band_but_saturates_at_dc() {
        let mut b = BehavioralIntegrator::default();
        let mut i = IdealIntegrator::default();
        // Short burst: both integrate similarly.
        let ob = run_cycle(&mut b, 0.05, 200, 50e-12);
        let oi = run_cycle(&mut i, 0.05, 200, 50e-12);
        assert!(
            (ob - oi).abs() / oi.abs() < 0.2,
            "in-band agreement: {ob} vs {oi}"
        );
        // Very long DC drive: behavioural saturates at A·vin, ideal ramps on.
        let mut b2 = BehavioralIntegrator::default();
        let dc = run_cycle(&mut b2, 0.05, 200_000, 50e-12);
        let a = 10f64.powf(DEFAULT_GAIN_DB / 20.0);
        assert!(
            (dc - a * 0.05).abs() / (a * 0.05) < 0.05,
            "dc limit: {dc} vs {}",
            a * 0.05
        );
    }

    #[test]
    fn behavioral_input_clip_limits_large_signals() {
        let mut plain = BehavioralIntegrator::from_default_calibration();
        let mut clipped = BehavioralIntegrator::with_input_clip();
        let o1 = run_cycle(&mut plain, 1.5, 400, 50e-12);
        let o2 = run_cycle(&mut clipped, 1.5, 400, 50e-12);
        assert!(o2 < o1 * 0.5, "clip bites: {o2} vs {o1}");
    }

    #[test]
    fn circuit_integrates_and_dumps_like_the_others() {
        let mut c = CircuitIntegrator::with_defaults().expect("op");
        let out = run_cycle(&mut c, 0.06, 400, 50e-12);
        assert!(out > 0.02, "circuit ramped: {out}");
        c.set_control(false);
        let dumped = run_cycle(&mut c, 0.0, 100, 50e-12);
        assert!(dumped.abs() < 5e-3, "circuit dumped: {dumped}");
    }

    #[test]
    fn circuit_and_behavioral_share_scale() {
        let mut c = CircuitIntegrator::with_defaults().expect("op");
        let mut b = BehavioralIntegrator::default();
        let oc = run_cycle(&mut c, 0.04, 400, 50e-12);
        let ob = run_cycle(&mut b, 0.04, 400, 50e-12);
        assert!(
            (oc - ob).abs() / ob.abs() < 0.5,
            "same design scale: circuit {oc} vs model {ob}"
        );
    }

    #[test]
    fn fidelity_labels() {
        assert_eq!(Fidelity::Ideal.to_string(), "IDEAL");
        assert_eq!(Fidelity::Circuit.to_string(), "SPICE netlist");
        let b = build_integrator(Fidelity::Behavioral).unwrap();
        assert_eq!(b.fidelity(), Fidelity::Behavioral);
    }

    #[test]
    fn newton_work_is_recorded_at_every_fidelity() {
        // Raw iteration counts are not comparable across kernels (a circuit
        // Newton iteration assembles and factors a 30+-unknown MNA system;
        // a behavioural one solves a 2×2) — Table 1 compares wall-clock via
        // the metrics campaign. Here we only require the proxy to count.
        let mut i = IdealIntegrator::default();
        let mut b = BehavioralIntegrator::default();
        let mut c = CircuitIntegrator::with_defaults().expect("op");
        let c0 = c.newton_iterations();
        for _ in 0..100 {
            i.step(50e-12, 0.02).unwrap();
            b.step(50e-12, 0.02).unwrap();
            c.step(50e-12, 0.02).unwrap();
        }
        assert!(i.newton_iterations() >= 100);
        assert!(b.newton_iterations() >= 100);
        assert!(c.newton_iterations() - c0 >= 100);
    }
}
