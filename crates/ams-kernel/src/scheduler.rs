//! Mixed-signal scheduling: the lock-step synchroniser between the
//! event-driven digital kernel and the continuous-time analog solver.
//!
//! The scheme mirrors the ADMS co-simulation model the paper relies on:
//! analog blocks advance in fixed steps (the paper uses 0.05 ns); at every
//! step boundary the digital kernel processes all pending events, analog
//! blocks sample the digital signals they are connected to, advance, and
//! publish their outputs back as `Real` signals.

use crate::signal::{SignalId, Value};
use crate::sim::Simulator;
use crate::solver::SolveError;
use crate::time::SimTime;
use std::any::Any;

/// Static port metadata an [`AnalogBlock`] can expose so the pre-simulation
/// rule checker (`crates/lint`) can reason about the scheduler graph without
/// running it: which digital signals the block reads and forces, and whether
/// it carries continuous state (a stateful block legitimately breaks a
/// combinational feedback loop; a stateless one does not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPortInfo {
    /// Human-readable block label for diagnostics.
    pub name: String,
    /// Digital signals sampled by [`AnalogBlock::sample_inputs`].
    pub inputs: Vec<SignalId>,
    /// Digital signals forced by [`AnalogBlock::publish`].
    pub outputs: Vec<SignalId>,
    /// True when the block integrates internal state between steps
    /// (its outputs at `t` do not combinationally depend on inputs at `t`).
    pub has_state: bool,
}

/// A continuous-time block participating in mixed-signal lock-step.
///
/// Implementations typically wrap an [`AnalogModel`](crate::analog::AnalogModel)
/// plus an [`ImplicitSolver`](crate::solver::ImplicitSolver), but the trait is
/// deliberately open so that a transistor-level netlist simulator can hide
/// behind the same seam — the paper's substitute-and-play step.
pub trait AnalogBlock {
    /// Reads the digital signals this block depends on.
    fn sample_inputs(&mut self, sim: &Simulator);

    /// Advances the internal continuous state from `t0` by `dt`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    fn step(&mut self, t0: SimTime, dt: SimTime) -> Result<(), SolveError>;

    /// Writes this block's outputs back into the digital kernel
    /// (via [`Simulator::force`] so processes see fresh samples without
    /// being woken for every analog step).
    fn publish(&self, sim: &mut Simulator);

    /// Upcast for callers that need the concrete type back.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Static port metadata for rule checking. Blocks that cannot describe
    /// themselves return `None` and are skipped by graph-level lints.
    fn port_info(&self) -> Option<BlockPortInfo> {
        None
    }
}

/// Handle to an analog block inside a [`MixedSimulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(usize);

/// The lock-step mixed-signal simulator.
///
/// # Examples
///
/// ```
/// use ams_kernel::analog::IdealGatedIntegrator;
/// use ams_kernel::scheduler::{MixedSimulator, OdeBlock};
/// use ams_kernel::time::SimTime;
///
/// let mut ms = MixedSimulator::new(SimTime::from_ps(50));
/// let vin = ms.digital.add_signal("vin", 0.1f64);
/// let sel = ms.digital.add_signal("sel", true);
/// let hold = ms.digital.add_signal("hold", false);
/// let vout = ms.digital.add_signal("vout", 0.0f64);
///
/// let blk = OdeBlock::new(
///     IdealGatedIntegrator::new(1e9),
///     vec![vin, sel, hold],
///     vec![(vout, 0)],
/// );
/// ms.add_block(Box::new(blk));
/// ms.run_until(SimTime::from_ns(100)).unwrap();
/// // ∫ 0.1 V · 1e9 / s over 100 ns = 10 V
/// let v = ms.digital.read(vout).as_real();
/// assert!((v - 10.0).abs() < 0.01);
/// ```
pub struct MixedSimulator {
    /// The digital event kernel. Public: testbenches declare signals and
    /// processes directly on it.
    pub digital: Simulator,
    blocks: Vec<Box<dyn AnalogBlock>>,
    dt: SimTime,
    now: SimTime,
    /// Total analog steps taken across all blocks (CPU-cost proxy).
    analog_steps: u64,
}

impl std::fmt::Debug for MixedSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixedSimulator")
            .field("now", &self.now)
            .field("dt", &self.dt)
            .field("blocks", &self.blocks.len())
            .field("analog_steps", &self.analog_steps)
            .finish()
    }
}

impl MixedSimulator {
    /// Creates a mixed simulator with analog step `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    pub fn new(dt: SimTime) -> Self {
        assert!(dt > SimTime::ZERO, "analog step must be positive");
        MixedSimulator {
            digital: Simulator::new(),
            blocks: Vec::new(),
            dt,
            now: SimTime::ZERO,
            analog_steps: 0,
        }
    }

    /// Current lock-step time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fixed analog step.
    pub fn dt(&self) -> SimTime {
        self.dt
    }

    /// Total analog block-steps executed.
    pub fn analog_steps(&self) -> u64 {
        self.analog_steps
    }

    /// Registers an analog block.
    pub fn add_block(&mut self, block: Box<dyn AnalogBlock>) -> BlockId {
        self.blocks.push(block);
        BlockId(self.blocks.len() - 1)
    }

    /// Borrows a block back as its concrete type.
    pub fn block<T: 'static>(&self, id: BlockId) -> Option<&T> {
        self.blocks
            .get(id.0)
            .and_then(|b| b.as_any().downcast_ref())
    }

    /// Mutably borrows a block back as its concrete type.
    pub fn block_mut<T: 'static>(&mut self, id: BlockId) -> Option<&mut T> {
        self.blocks
            .get_mut(id.0)
            .and_then(|b| b.as_any_mut().downcast_mut())
    }

    /// Port metadata of every registered block, in registration order.
    /// Blocks without self-description yield `None`.
    pub fn block_info(&self) -> Vec<Option<BlockPortInfo>> {
        self.blocks.iter().map(|b| b.port_info()).collect()
    }

    /// Advances the co-simulation to `stop` in lock-step.
    ///
    /// # Errors
    ///
    /// Stops at the first analog solver failure.
    pub fn run_until(&mut self, stop: SimTime) -> Result<(), SolveError> {
        while self.now < stop {
            let dt = self.dt.min(stop - self.now);
            // 1. Digital catches up to the step start (events, delta cycles).
            self.digital.run_until(self.now);
            // 2. Analog blocks sample the settled digital state...
            for b in &mut self.blocks {
                b.sample_inputs(&self.digital);
            }
            // 3. ...advance...
            for b in &mut self.blocks {
                b.step(self.now, dt)?;
                self.analog_steps += 1;
            }
            self.now += dt;
            // 4. ...and publish at the step end.
            self.digital.run_until(self.now);
            for b in &self.blocks {
                b.publish(&mut self.digital);
            }
        }
        self.digital.run_until(stop);
        Ok(())
    }
}

/// Convenience [`AnalogBlock`]: an [`AnalogModel`](crate::analog::AnalogModel)
/// fed from digital signals and publishing selected states back.
pub struct OdeBlock<M> {
    model: M,
    solver: crate::solver::ImplicitSolver,
    state: crate::solver::TransientState,
    input_signals: Vec<SignalId>,
    inputs: Vec<f64>,
    /// (signal, state index) pairs to publish after each step.
    outputs: Vec<(SignalId, usize)>,
}

impl<M: std::fmt::Debug> std::fmt::Debug for OdeBlock<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OdeBlock")
            .field("model", &self.model)
            .field("state", &self.state)
            .finish()
    }
}

impl<M: crate::analog::AnalogModel> OdeBlock<M> {
    /// Wraps `model`, reading `input_signals` in order into `u` and
    /// publishing `outputs` = (signal, state index) after each step.
    pub fn new(model: M, input_signals: Vec<SignalId>, outputs: Vec<(SignalId, usize)>) -> Self {
        let state = crate::solver::TransientState::from_model(&model);
        let n_in = input_signals.len();
        OdeBlock {
            model,
            solver: crate::solver::ImplicitSolver::default(),
            state,
            input_signals,
            inputs: vec![0.0; n_in],
            outputs,
        }
    }

    /// Replaces the solver options.
    pub fn with_solver_options(mut self, options: crate::solver::SolverOptions) -> Self {
        self.solver = crate::solver::ImplicitSolver::new(options);
        self
    }

    /// Current state vector.
    pub fn state(&self) -> &[f64] {
        &self.state.x
    }

    /// Applies a `break`: overwrite states discontinuously.
    pub fn apply_break(&mut self, new_x: &[f64]) {
        self.state.apply_break(new_x);
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Cumulative Newton iterations (CPU-cost proxy).
    pub fn newton_iterations(&self) -> u64 {
        self.solver.newton_iterations()
    }

    /// Work counters of the wrapped solver (steps, Newton iterations,
    /// LU factorizations and reuses, wall time).
    pub fn perf_counters(&self) -> &crate::perf::PerfCounters {
        self.solver.counters()
    }
}

impl<M: crate::analog::AnalogModel + 'static> AnalogBlock for OdeBlock<M> {
    fn sample_inputs(&mut self, sim: &Simulator) {
        for (slot, &sig) in self.inputs.iter_mut().zip(&self.input_signals) {
            *slot = sim.read(sig).as_real();
        }
    }

    fn step(&mut self, t0: SimTime, dt: SimTime) -> Result<(), SolveError> {
        self.solver.step(
            &self.model,
            t0.as_secs_f64(),
            dt.as_secs_f64(),
            &self.inputs,
            &mut self.state,
        )
    }

    fn publish(&self, sim: &mut Simulator) {
        for &(sig, idx) in &self.outputs {
            sim.force(sig, Value::Real(self.state.x[idx]));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn port_info(&self) -> Option<BlockPortInfo> {
        Some(BlockPortInfo {
            name: format!("ode:{}", std::any::type_name::<M>()),
            inputs: self.input_signals.clone(),
            outputs: self.outputs.iter().map(|&(sig, _)| sig).collect(),
            // An ODE block always integrates: outputs come from `state.x`,
            // never combinationally from this step's inputs.
            has_state: !self.state.x.is_empty(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analog::{FirstOrderLag, IdealGatedIntegrator};

    #[test]
    fn ode_block_describes_its_ports() {
        let mut ms = MixedSimulator::new(SimTime::from_ns(1));
        let u = ms.digital.add_signal("u", 0.0f64);
        let y = ms.digital.add_signal("y", 0.0f64);
        ms.add_block(Box::new(OdeBlock::new(
            FirstOrderLag {
                tau: 1e-9,
                gain: 1.0,
            },
            vec![u],
            vec![(y, 0)],
        )));
        let info = ms.block_info();
        assert_eq!(info.len(), 1);
        let info = info[0].as_ref().expect("ode blocks self-describe");
        assert_eq!(info.inputs, vec![u]);
        assert_eq!(info.outputs, vec![y]);
        assert!(info.has_state);
        assert!(info.name.starts_with("ode:"));
    }

    #[test]
    fn lockstep_integrator_tracks_digital_gate() {
        let mut ms = MixedSimulator::new(SimTime::from_ps(100));
        let vin = ms.digital.add_signal("vin", 0.2f64);
        let sel = ms.digital.add_signal("sel", true);
        let hold = ms.digital.add_signal("hold", false);
        let vout = ms.digital.add_signal("vout", 0.0f64);
        let id = ms.add_block(Box::new(OdeBlock::new(
            IdealGatedIntegrator::new(1e9),
            vec![vin, sel, hold],
            vec![(vout, 0)],
        )));

        // Integrate 50 ns, then dump.
        ms.digital.schedule(sel, false, SimTime::from_ns(50));
        ms.run_until(SimTime::from_ns(50)).unwrap();
        let peak = ms.digital.read(vout).as_real();
        assert!((peak - 10.0).abs() < 0.05, "peak = {peak}");

        ms.run_until(SimTime::from_ns(60)).unwrap();
        let dumped = ms.digital.read(vout).as_real();
        assert!(dumped.abs() < 1e-6, "dumped = {dumped}");
        let blk: &OdeBlock<IdealGatedIntegrator> = ms.block(id).unwrap();
        assert!(blk.state()[0].abs() < 1e-6);
    }

    #[test]
    fn analog_chain_propagates_through_signals() {
        // Two cascaded lags coupled through a digital Real signal.
        let mut ms = MixedSimulator::new(SimTime::from_ns(1));
        let u = ms.digital.add_signal("u", 1.0f64);
        let mid = ms.digital.add_signal("mid", 0.0f64);
        let out = ms.digital.add_signal("out", 0.0f64);
        ms.add_block(Box::new(OdeBlock::new(
            FirstOrderLag {
                tau: 50e-9,
                gain: 1.0,
            },
            vec![u],
            vec![(mid, 0)],
        )));
        ms.add_block(Box::new(OdeBlock::new(
            FirstOrderLag {
                tau: 50e-9,
                gain: 2.0,
            },
            vec![mid],
            vec![(out, 0)],
        )));
        ms.run_until(SimTime::from_us(2)).unwrap();
        let v = ms.digital.read(out).as_real();
        assert!((v - 2.0).abs() < 0.01, "settled = {v}");
    }

    #[test]
    fn digital_events_between_steps_are_seen() {
        let mut ms = MixedSimulator::new(SimTime::from_ps(500));
        let vin = ms.digital.add_signal("vin", 1.0f64);
        let sel = ms.digital.add_signal("sel", true);
        let hold = ms.digital.add_signal("hold", false);
        let vout = ms.digital.add_signal("vout", 0.0f64);
        ms.add_block(Box::new(OdeBlock::new(
            IdealGatedIntegrator::new(1e9),
            vec![vin, sel, hold],
            vec![(vout, 0)],
        )));
        // Gate toggles mid-run driven by a digital process.
        let p = ms.digital.add_process("gate", move |ctx| {
            let v = ctx.read_bit(sel);
            ctx.assign(sel, !v);
            ctx.wake_after(SimTime::from_ns(10));
        });
        ms.digital.schedule_wakeup(p, SimTime::from_ns(10));
        ms.run_until(SimTime::from_ns(15)).unwrap();
        // After 10 ns of integration the gate dropped → output dumped to 0.
        assert!(ms.digital.read(vout).as_real().abs() < 1e-6);
    }

    #[test]
    fn run_until_partial_step_lands_exactly() {
        let mut ms = MixedSimulator::new(SimTime::from_ns(3));
        let u = ms.digital.add_signal("u", 1.0f64);
        let y = ms.digital.add_signal("y", 0.0f64);
        ms.add_block(Box::new(OdeBlock::new(
            FirstOrderLag {
                tau: 1e-9,
                gain: 1.0,
            },
            vec![u],
            vec![(y, 0)],
        )));
        ms.run_until(SimTime::from_ns(10)).unwrap();
        assert_eq!(ms.now(), SimTime::from_ns(10));
    }

    #[test]
    fn block_downcast_roundtrip() {
        let mut ms = MixedSimulator::new(SimTime::from_ns(1));
        let u = ms.digital.add_signal("u", 0.0f64);
        let y = ms.digital.add_signal("y", 0.0f64);
        let id = ms.add_block(Box::new(OdeBlock::new(
            FirstOrderLag {
                tau: 1e-9,
                gain: 3.0,
            },
            vec![u],
            vec![(y, 0)],
        )));
        let blk: &OdeBlock<FirstOrderLag> = ms.block(id).expect("downcast");
        assert_eq!(blk.model().gain, 3.0);
        assert!(ms.block::<OdeBlock<IdealGatedIntegrator>>(id).is_none());
    }
}
