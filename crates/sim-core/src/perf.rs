//! Performance counters for the numerical kernels.
//!
//! The paper's Table 1 compares CPU time across model fidelities; these
//! counters make the underlying work machine-readable — how many time
//! steps ran, how many Newton iterations they took, and how often the
//! Jacobian actually had to be re-factorized versus reusing the cached LU
//! (the fast path). Both engines thread the same counter type, so a
//! mixed-fidelity campaign can merge behavioural and circuit work into
//! one report.

use std::time::Duration;

/// Cheap work counters threaded through both engines' solvers (the
/// behavioural implicit solver and the circuit DC/transient analyses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Accepted time steps (transient only). Under adaptive stepping this
    /// counts only steps that passed the local-truncation-error test (or
    /// were force-accepted at the step floor); rejected attempts land in
    /// [`steps_rejected`](Self::steps_rejected).
    pub steps: u64,
    /// Transient step attempts whose solve succeeded but whose estimated
    /// local truncation error exceeded tolerance, forcing a retry at a
    /// smaller width (adaptive stepping only).
    pub steps_rejected: u64,
    /// Local-truncation-error estimates computed (one per step attempt
    /// with enough accepted history for the divided-difference predictor).
    pub lte_evaluations: u64,
    /// Integration-order changes: LTE-driven switches between Backward
    /// Euler (order 1) and trapezoidal (order 2), plus the documented
    /// one-step Backward-Euler bootstrap of a fixed-step trapezoidal run.
    pub order_switches: u64,
    /// Newton iterations (each one assembles the MNA system once).
    pub newton_iterations: u64,
    /// LU factorizations performed.
    pub lu_factorizations: u64,
    /// Linear solves that reused a cached factorization.
    pub lu_reuses: u64,
    /// Sparse symbolic analyses (full fill-reducing + pivoting pass; once
    /// per circuit topology on the sparse path).
    pub symbolic_analyses: u64,
    /// Sparse numeric refactorizations on a pinned pattern/pivot order.
    pub numeric_refactors: u64,
    /// Sparse refactors abandoned because a pinned pivot degraded (each
    /// one triggers a fresh symbolic analysis).
    pub pattern_fallbacks: u64,
    /// Monte-Carlo DC solves that converged from a warm start (the
    /// previous point's operating point) without entering the homotopy
    /// ladder.
    pub warm_start_hits: u64,
    /// Rescue-ladder attempts (timestep cuts, homotopy rungs, adaptive
    /// sub-steps) entered after a solver failure.
    pub rescue_attempts: u64,
    /// Rescue attempts that recovered the failing step or operating point.
    pub rescue_successes: u64,
    /// Batched multi-lane numeric refactorizations (each one advances a
    /// whole lane group through the pinned pattern at once).
    pub batched_refactors: u64,
    /// Batched multi-lane forward/back solves.
    pub batched_solves: u64,
    /// Lanes that retired from a batch (converged, stale, or failed)
    /// while other lanes in the same group were still iterating.
    pub lanes_retired_early: u64,
    /// Structural analyses of the sparse pattern (maximum matching + BTF
    /// extraction; once per circuit topology when the BTF path is on).
    pub structural_analyses: u64,
    /// Diagonal blocks exposed by block-triangular-form extraction,
    /// summed over structural analyses.
    pub btf_blocks: u64,
    /// GMRES inner (Arnoldi) iterations across all Krylov solves.
    pub krylov_iterations: u64,
    /// GMRES restart cycles entered after an unconverged inner sweep.
    pub krylov_restarts: u64,
    /// ILU(0)/Jacobi preconditioner (re)builds on the pinned pattern.
    pub preconditioner_builds: u64,
    /// Krylov solves that did not converge (or broke down) and were
    /// transparently demoted to the direct sparse LU — a counted rescue
    /// rung, never a new failure mode.
    pub krylov_fallbacks: u64,
    /// Wall-clock time spent inside `step()` (transient only).
    pub wall: Duration,
}

impl PerfCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `other` into `self` (for aggregating phases or workers).
    pub fn merge(&mut self, other: &PerfCounters) {
        self.steps += other.steps;
        self.steps_rejected += other.steps_rejected;
        self.lte_evaluations += other.lte_evaluations;
        self.order_switches += other.order_switches;
        self.newton_iterations += other.newton_iterations;
        self.lu_factorizations += other.lu_factorizations;
        self.lu_reuses += other.lu_reuses;
        self.symbolic_analyses += other.symbolic_analyses;
        self.numeric_refactors += other.numeric_refactors;
        self.pattern_fallbacks += other.pattern_fallbacks;
        self.warm_start_hits += other.warm_start_hits;
        self.rescue_attempts += other.rescue_attempts;
        self.rescue_successes += other.rescue_successes;
        self.batched_refactors += other.batched_refactors;
        self.batched_solves += other.batched_solves;
        self.lanes_retired_early += other.lanes_retired_early;
        self.structural_analyses += other.structural_analyses;
        self.btf_blocks += other.btf_blocks;
        self.krylov_iterations += other.krylov_iterations;
        self.krylov_restarts += other.krylov_restarts;
        self.preconditioner_builds += other.preconditioner_builds;
        self.krylov_fallbacks += other.krylov_fallbacks;
        self.wall += other.wall;
    }

    /// Accepted transient steps — an explicit alias for [`steps`](Self::steps)
    /// now that adaptive stepping distinguishes accepted from rejected
    /// attempts.
    pub fn steps_accepted(&self) -> u64 {
        self.steps
    }

    /// Accepted steps per wall-clock second (0 when no time was recorded).
    pub fn steps_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of linear solves that skipped factorization.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.lu_factorizations + self.lu_reuses;
        if total > 0 {
            self.lu_reuses as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Fraction of sparse factorizations served by a pinned-pattern
    /// numeric refactor instead of a full symbolic analysis.
    pub fn refactor_ratio(&self) -> f64 {
        let total = self.symbolic_analyses + self.numeric_refactors;
        if total > 0 {
            self.numeric_refactors as f64 / total as f64
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for PerfCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} steps ({} rejected, {} lte evals, {} order switches), {} Newton iters, {} LU factorizations, {} LU reuses ({:.0}% reuse), {} symbolic / {} refactors / {} fallbacks, {} warm starts, {}/{} rescues, {} batched refactors / {} batched solves / {} early retires, {} structural analyses / {} btf blocks, {} krylov iters / {} restarts / {} precond builds / {} krylov fallbacks, {:.3} s wall",
            self.steps,
            self.steps_rejected,
            self.lte_evaluations,
            self.order_switches,
            self.newton_iterations,
            self.lu_factorizations,
            self.lu_reuses,
            self.reuse_ratio() * 100.0,
            self.symbolic_analyses,
            self.numeric_refactors,
            self.pattern_fallbacks,
            self.warm_start_hits,
            self.rescue_successes,
            self.rescue_attempts,
            self.batched_refactors,
            self.batched_solves,
            self.lanes_retired_early,
            self.structural_analyses,
            self.btf_blocks,
            self.krylov_iterations,
            self.krylov_restarts,
            self.preconditioner_builds,
            self.krylov_fallbacks,
            self.wall.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = PerfCounters {
            steps: 1,
            steps_rejected: 14,
            lte_evaluations: 15,
            order_switches: 16,
            newton_iterations: 2,
            lu_factorizations: 3,
            lu_reuses: 4,
            symbolic_analyses: 5,
            numeric_refactors: 6,
            pattern_fallbacks: 7,
            warm_start_hits: 8,
            rescue_attempts: 5,
            rescue_successes: 6,
            batched_refactors: 9,
            batched_solves: 10,
            lanes_retired_early: 11,
            structural_analyses: 12,
            btf_blocks: 13,
            krylov_iterations: 17,
            krylov_restarts: 18,
            preconditioner_builds: 19,
            krylov_fallbacks: 20,
            wall: Duration::from_millis(10),
        };
        let b = PerfCounters {
            steps: 10,
            steps_rejected: 140,
            lte_evaluations: 150,
            order_switches: 160,
            newton_iterations: 20,
            lu_factorizations: 30,
            lu_reuses: 40,
            symbolic_analyses: 50,
            numeric_refactors: 60,
            pattern_fallbacks: 70,
            warm_start_hits: 80,
            rescue_attempts: 50,
            rescue_successes: 60,
            batched_refactors: 90,
            batched_solves: 100,
            lanes_retired_early: 110,
            structural_analyses: 120,
            btf_blocks: 130,
            krylov_iterations: 170,
            krylov_restarts: 180,
            preconditioner_builds: 190,
            krylov_fallbacks: 200,
            wall: Duration::from_millis(100),
        };
        a.merge(&b);
        assert_eq!(a.steps, 11);
        assert_eq!(a.steps_accepted(), 11);
        assert_eq!(a.steps_rejected, 154);
        assert_eq!(a.lte_evaluations, 165);
        assert_eq!(a.order_switches, 176);
        assert_eq!(a.newton_iterations, 22);
        assert_eq!(a.lu_factorizations, 33);
        assert_eq!(a.lu_reuses, 44);
        assert_eq!(a.symbolic_analyses, 55);
        assert_eq!(a.numeric_refactors, 66);
        assert_eq!(a.pattern_fallbacks, 77);
        assert_eq!(a.warm_start_hits, 88);
        assert_eq!(a.rescue_attempts, 55);
        assert_eq!(a.rescue_successes, 66);
        assert_eq!(a.batched_refactors, 99);
        assert_eq!(a.batched_solves, 110);
        assert_eq!(a.lanes_retired_early, 121);
        assert_eq!(a.structural_analyses, 132);
        assert_eq!(a.btf_blocks, 143);
        assert_eq!(a.krylov_iterations, 187);
        assert_eq!(a.krylov_restarts, 198);
        assert_eq!(a.preconditioner_builds, 209);
        assert_eq!(a.krylov_fallbacks, 220);
        assert_eq!(a.wall, Duration::from_millis(110));
    }

    #[test]
    fn derived_rates() {
        let c = PerfCounters {
            steps: 500,
            wall: Duration::from_millis(250),
            lu_factorizations: 1,
            lu_reuses: 499,
            ..Default::default()
        };
        assert!((c.steps_per_second() - 2000.0).abs() < 1e-9);
        assert!((c.reuse_ratio() - 0.998).abs() < 1e-9);
        assert_eq!(PerfCounters::default().steps_per_second(), 0.0);
        assert_eq!(PerfCounters::default().reuse_ratio(), 0.0);
        assert_eq!(PerfCounters::default().refactor_ratio(), 0.0);
        let s = c.to_string();
        assert!(s.contains("500 steps"), "{s}");
    }

    #[test]
    fn refactor_ratio_counts_sparse_work() {
        let c = PerfCounters {
            symbolic_analyses: 1,
            numeric_refactors: 3,
            pattern_fallbacks: 1,
            warm_start_hits: 2,
            ..Default::default()
        };
        assert!((c.refactor_ratio() - 0.75).abs() < 1e-12);
        let s = c.to_string();
        assert!(s.contains("3 refactors"), "{s}");
        assert!(s.contains("2 warm starts"), "{s}");
    }
}
