//! Deterministic fault injection for the simulation engines.
//!
//! The rescue ladder (timestep cuts, DC homotopy rungs — see
//! [`rescue`](crate::rescue)) only matters on runs that *fail*, and
//! well-posed regression decks rarely do. This module makes failure a
//! first-class, reproducible test input: a [`FaultSchedule`] names exact
//! step indices at which an engine must pretend something went wrong —
//! a diverging Newton loop, a pivot collapsing to zero, a model emitting
//! NaN, an AMS block saturating, a scheduler event stalling. Both engines
//! consult the schedule at their step boundaries and synthesise the named
//! failure, so every rung of the rescue ladder is exercisable from a test
//! without hunting for a pathological circuit.
//!
//! Determinism is the whole point, mirroring the per-point RNG streams of
//! the campaign executor: the same seed and schedule always perturb the
//! same steps, so a rescue transcript and the recovered waveform checksum
//! can be pinned as golden vectors.

/// What kind of failure to synthesise at an injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Force the step's Newton iteration to report divergence.
    NewtonDivergence,
    /// Force the linear solve to report a zero pivot (singular matrix).
    ZeroPivot,
    /// Poison the step's model evaluation so it produces non-finite
    /// residuals, exercising the NaN/Inf guards end to end.
    NonFiniteResidual,
    /// Clamp an AMS block's published outputs to a saturation bound
    /// (consumed by the mixed-signal scheduler; circuit engines ignore it).
    SaturateOutput,
    /// Suppress the digital event settle at one lock-step boundary
    /// (consumed by the mixed-signal scheduler; circuit engines ignore it).
    StallEvent,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::NewtonDivergence => "newton-divergence",
            FaultKind::ZeroPivot => "zero-pivot",
            FaultKind::NonFiniteResidual => "non-finite-residual",
            FaultKind::SaturateOutput => "saturate-output",
            FaultKind::StallEvent => "stall-event",
        };
        f.write_str(s)
    }
}

/// One planned perturbation: fire `kind` at step index `step`.
///
/// Step indices count an engine's *top-level* step attempts (macro steps),
/// not rescue sub-steps — injection happens before any rescue machinery,
/// so a fired fault is exactly what the ladder then has to recover from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Macro-step index at which the fault fires.
    pub step: u64,
    /// Failure to synthesise.
    pub kind: FaultKind,
}

/// A deterministic, consumable set of planned faults.
///
/// Each spec fires at most once: the first step attempt at its index
/// consumes it, so the rescue retry that follows sees a healthy solver —
/// exactly the transient-glitch scenario the ladder exists for. Persistent
/// faults are modelled by scheduling several specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    seed: u64,
    specs: Vec<FaultSpec>,
    fired: Vec<bool>,
}

impl FaultSchedule {
    /// An empty schedule carrying `seed` (recorded for reports/replay).
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            specs: Vec::new(),
            fired: Vec::new(),
        }
    }

    /// Builder: adds one fault at an explicit step index.
    #[must_use]
    pub fn with_fault(mut self, step: u64, kind: FaultKind) -> Self {
        self.specs.push(FaultSpec { step, kind });
        self.fired.push(false);
        self
    }

    /// Draws `count` faults of the given kinds at seed-determined step
    /// indices in `0..max_step` (SplitMix64 stream, the same generator
    /// family the parallel campaign executor uses for its per-point
    /// streams). Same arguments ⇒ same schedule, on every platform.
    pub fn seeded(seed: u64, count: usize, max_step: u64, kinds: &[FaultKind]) -> Self {
        assert!(!kinds.is_empty(), "need at least one fault kind to draw");
        assert!(max_step > 0, "need a non-empty step range");
        let mut schedule = FaultSchedule::new(seed);
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..count {
            let step = next() % max_step;
            let kind = kinds[(next() % kinds.len() as u64) as usize];
            schedule = schedule.with_fault(step, kind);
        }
        schedule
    }

    /// The seed this schedule was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All planned faults, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Number of faults that have fired so far.
    pub fn fired(&self) -> usize {
        self.fired.iter().filter(|f| **f).count()
    }

    /// Number of faults still armed.
    pub fn armed(&self) -> usize {
        self.specs.len() - self.fired()
    }

    /// Consumes and returns the first still-armed fault planned for `step`
    /// whose kind the calling engine `accepts`. Kinds the engine does not
    /// accept stay armed (a scheduler-only fault in a circuit run is
    /// simply never consumed).
    pub fn take_matching(
        &mut self,
        step: u64,
        accept: impl Fn(FaultKind) -> bool,
    ) -> Option<FaultKind> {
        for (spec, fired) in self.specs.iter().zip(self.fired.iter_mut()) {
            if !*fired && spec.step == step && accept(spec.kind) {
                *fired = true;
                return Some(spec.kind);
            }
        }
        None
    }

    /// Re-arms every fault (for replaying the identical run).
    pub fn rearm(&mut self) {
        for f in &mut self.fired {
            *f = false;
        }
    }
}

/// Order-sensitive checksum of a waveform, built from the exact bit
/// patterns of its samples (FNV-1a over `f64::to_bits`). Two runs produce
/// the same checksum iff they produced bit-identical sample sequences —
/// the currency of the golden fault-matrix tests.
pub fn waveform_checksum(samples: &[f64]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for s in samples {
        for byte in s.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_fires_once_per_spec() {
        let mut s = FaultSchedule::new(7)
            .with_fault(3, FaultKind::NewtonDivergence)
            .with_fault(3, FaultKind::ZeroPivot);
        assert_eq!(s.armed(), 2);
        assert_eq!(s.take_matching(2, |_| true), None);
        assert_eq!(
            s.take_matching(3, |_| true),
            Some(FaultKind::NewtonDivergence)
        );
        assert_eq!(s.take_matching(3, |_| true), Some(FaultKind::ZeroPivot));
        assert_eq!(s.take_matching(3, |_| true), None);
        assert_eq!(s.fired(), 2);
        s.rearm();
        assert_eq!(s.armed(), 2);
    }

    #[test]
    fn engines_skip_kinds_they_do_not_accept() {
        let mut s = FaultSchedule::new(1)
            .with_fault(0, FaultKind::SaturateOutput)
            .with_fault(0, FaultKind::NewtonDivergence);
        // A circuit engine that only accepts solver-level kinds leaves the
        // scheduler fault armed.
        let got = s.take_matching(0, |k| k != FaultKind::SaturateOutput);
        assert_eq!(got, Some(FaultKind::NewtonDivergence));
        assert_eq!(s.armed(), 1);
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_bounded() {
        let kinds = [FaultKind::NewtonDivergence, FaultKind::ZeroPivot];
        let a = FaultSchedule::seeded(42, 16, 100, &kinds);
        let b = FaultSchedule::seeded(42, 16, 100, &kinds);
        assert_eq!(a, b);
        assert_eq!(a.specs().len(), 16);
        assert!(a.specs().iter().all(|s| s.step < 100));
        let c = FaultSchedule::seeded(43, 16, 100, &kinds);
        assert_ne!(a.specs(), c.specs(), "different seed, different plan");
    }

    #[test]
    fn checksum_is_order_and_bit_sensitive() {
        let a = waveform_checksum(&[1.0, 2.0, 3.0]);
        assert_eq!(a, waveform_checksum(&[1.0, 2.0, 3.0]));
        assert_ne!(a, waveform_checksum(&[1.0, 3.0, 2.0]));
        assert_ne!(a, waveform_checksum(&[1.0, 2.0, 3.0 + 1e-15]));
        // -0.0 == 0.0 numerically but differs bitwise: the checksum sees it.
        assert_ne!(waveform_checksum(&[0.0]), waveform_checksum(&[-0.0]));
    }
}
