//! # sim-core — the shared numeric and observability substrate
//!
//! Both simulation engines of this workspace — the behavioural mixed-signal
//! kernel (`ams-kernel`, the VHDL-AMS stand-in) and the transistor-level
//! circuit simulator (`spice`, the Eldo stand-in) — solve dense linear
//! systems inside Newton iterations, count the work they do, and record
//! waveforms on a common time axis. This crate owns that substrate once,
//! so every abstraction level of the top-down flow runs on the same kernel:
//!
//! * [`linalg`] — dense real ([`DMatrix`]) and complex ([`CMatrix`])
//!   matrices, partial-pivot LU with reusable cached factors
//!   ([`LuFactors`]), and [`SingularMatrixError`] reporting where
//!   elimination broke down,
//! * [`sparse`] — CSC [`SparseMatrix`] assembled from triplet stamps,
//!   fill-reducing ordering, and the split symbolic/numeric LU
//!   ([`SymbolicLu`] / [`NumericLu`]) that large MNA systems route
//!   through (selected per engine by [`SolverKind`]),
//! * [`batched`] — [`BatchedLu`], the SoA multi-lane numeric
//!   refactor/solve over one pinned [`SymbolicLu`] pattern that
//!   Monte-Carlo campaigns batch structure-identical points through
//!   (width policy via [`BatchWidth`] / `UWB_AMS_BATCH`),
//! * [`structure`] — value-free analysis of the sparse pattern:
//!   Hopcroft–Karp maximum matching plus coarse Dulmage–Mendelsohn
//!   classification ([`StructureReport`], feeding the static ERC layer)
//!   and block-triangular-form extraction with per-block LU
//!   ([`BtfForm`] / [`BtfLu`]),
//! * [`perf`] — [`PerfCounters`]: steps, Newton iterations, LU
//!   factorizations vs cached reuses, wall time,
//! * [`time`] — [`SimTime`], the femtosecond-resolution instant/duration,
//! * [`trace`] — [`Probe`] waveform recording and VCD/CSV export,
//! * [`diag`] — [`Severity`] and [`SourceSpan`], the diagnostic vocabulary
//!   shared with the static-analysis layer (`crates/lint`),
//! * [`rescue`] — [`RescueReport`]/[`RescueRung`], the engine-agnostic
//!   transcript of the convergence-rescue ladder,
//! * [`faultinject`] — [`FaultSchedule`], deterministic seed-driven fault
//!   injection that makes every rescue rung exercisable from tests.
//!
//! The LU elimination here is the single implementation in the workspace;
//! both engines consume it and their solutions are bit-identical to the
//! pre-consolidation ones (see the workspace `golden_kernel` tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batched;
pub mod diag;
pub mod faultinject;
pub mod linalg;
pub mod perf;
pub mod rescue;
pub mod sparse;
pub mod structure;
pub mod time;
pub mod trace;

pub use batched::{BatchWidth, BatchedLu, LaneOutcome};
pub use diag::{Severity, SourceSpan};
pub use faultinject::{waveform_checksum, FaultKind, FaultSchedule, FaultSpec};
pub use linalg::{CMatrix, DMatrix, LuFactors, Matrix, NumericFault, SingularMatrixError};
pub use perf::PerfCounters;
pub use rescue::{RescueAttempt, RescueReport, RescueRung};
pub use sparse::{NumericLu, RefactorOutcome, SolverKind, SparseMatrix, SymbolicLu};
pub use structure::{BtfForm, BtfLu, DmClass, StructureReport};
pub use time::SimTime;
pub use trace::Probe;
