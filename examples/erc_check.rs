//! Pre-simulation ERC in action: lint the paper's Integrate & Dump
//! netlist and the four-phase flow's block graphs before any solver runs,
//! then show the gate rejecting a deliberately broken variant.
//!
//! ```sh
//! cargo run --release --example erc_check                # demo
//! cargo run --release --example erc_check -- --self-check # CI gate
//! cargo run --release --example erc_check -- --json       # machine-readable
//! cargo run --release --example erc_check -- --no-erc     # escape hatch
//! ```
//!
//! `--self-check` lints every library cell and the flow partitions,
//! exiting non-zero on any Error finding — `scripts/verify.sh` runs it.

use lint::{lint_circuit, lint_graph, Severity};
use spice::circuit::{Circuit, SourceWave};
use spice::library::{cmos_inverter, integrate_dump_testbench, rc_lowpass};
use uwb_ams_core::erc::{phase_block_graph, ErcConfig};
use uwb_ams_core::flow::Phase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (cfg, rest) = ErcConfig::from_args(std::env::args().skip(1));
    let self_check = rest.iter().any(|a| a == "--self-check");
    let json = rest.iter().any(|a| a == "--json");

    if !cfg.enabled {
        println!("--no-erc: static checks skipped (the simulator is on its own)");
        return Ok(());
    }

    // Every artefact the flow depends on, linted statically.
    let mut failed = false;
    let mut reports = Vec::new();
    let bench = integrate_dump_testbench(&Default::default()).expect("builtin bench");
    let artefacts = [
        ("integrate_dump testbench (31-T cell)", bench.circuit),
        ("cmos_inverter", cmos_inverter(0.0).0),
        ("rc_lowpass", rc_lowpass(1e3, 1e-9).0),
    ];
    for (name, circuit) in artefacts {
        let report = lint_circuit(&circuit, name);
        if !json {
            print_outcome(name, &report);
        }
        failed |= report.has_errors();
        reports.push(report);
    }
    for phase in [Phase::II, Phase::III, Phase::IV] {
        let report = lint_graph(&phase_block_graph(phase));
        if !json {
            print_outcome(&format!("{phase} block graph"), &report);
        }
        failed |= report.has_errors();
        reports.push(report);
    }

    if json {
        // One document for the whole sweep: each artefact's full report,
        // in lint's stable Report JSON shape.
        let body: Vec<String> = reports.iter().map(lint::Report::to_json).collect();
        println!("{{\"artefacts\":[{}],\"failed\":{failed}}}", body.join(","));
        if failed {
            std::process::exit(1);
        }
        return Ok(());
    }

    if self_check {
        if failed {
            eprintln!("erc_check: Error findings present");
            std::process::exit(1);
        }
        println!("erc_check: all artefacts pass ERC");
        return Ok(());
    }

    // The demo half: inject the classic mistake — a second supply in
    // parallel with VDD at a different voltage — and watch the gate catch
    // it *before* the transient solver would have hit a singular matrix.
    let bench = integrate_dump_testbench(&Default::default()).expect("builtin bench");
    let mut broken = bench.circuit;
    broken.vsource("VDD2", bench.ports.vdd, Circuit::gnd(), SourceWave::Dc(1.5));
    let report = lint_circuit(&broken, "testbench + conflicting supply");
    println!("\n--- doctored netlist ---\n{}", report.render());
    assert!(report.has_errors(), "the injected loop must be caught");

    match uwb_ams_core::erc::checked_transient(
        broken,
        Default::default(),
        vec![0.0; 4],
        &ErcConfig::default(),
        "testbench + conflicting supply",
    ) {
        Err(uwb_ams_core::erc::FlowError::Erc { phase, .. }) => {
            println!("gate verdict: {phase} denied before the solver ran");
        }
        other => {
            drop(other);
            eprintln!("expected the ERC gate to deny the doctored netlist");
            std::process::exit(1);
        }
    }
    Ok(())
}

fn print_outcome(name: &str, report: &lint::Report) {
    let verdict = match report.worst() {
        None => "clean".to_string(),
        Some(Severity::Error) => format!("{} error(s)", report.errors().count()),
        Some(w) => format!("worst {}", w.label()),
    };
    println!("{name:<42} {verdict}");
    if !report.is_clean() {
        for line in report.render().lines() {
            println!("    {line}");
        }
    }
}
