//! One-command compact reproduction of every artefact in the paper's
//! evaluation, with a paper-vs-measured summary at the end. Scaled-down
//! workloads (< 2 minutes); the full-size versions live in
//! `crates/bench/benches/`.
//!
//! ```sh
//! cargo run --release --example paper_reproduction
//! ```

use uwb_ams_core::calibrate::phase4_extract;
use uwb_ams_core::metrics::{twr_table_row, BerCampaign, CpuTimeCampaign};
use uwb_ams_core::report::Table;
use uwb_txrx::integrator::{
    build_integrator, BehavioralIntegrator, CircuitIntegrator, Fidelity, IdealIntegrator,
    IntegratorBlock,
};
use uwb_txrx::transceiver::TwrConfig;

fn burst(t: f64) -> f64 {
    if !(5e-9..=25e-9).contains(&t) {
        return 0.0;
    }
    let u = (t - 5e-9) / 20e-9;
    0.90 * (std::f64::consts::PI * u).sin().powi(2)
}

fn transient_peak(mut intg: Box<dyn IntegratorBlock>) -> f64 {
    let dt = 50e-12;
    let mut peak = 0.0f64;
    for i in 0..(60e-9 / dt) as usize {
        let t = i as f64 * dt;
        intg.set_control(true);
        peak = peak.max(intg.step(dt, burst(t)).expect("step"));
    }
    peak
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t_start = std::time::Instant::now();
    let mut summary = Table::new(
        "Paper vs measured (compact run — see EXPERIMENTS.md for full sizes)",
        &["Artefact", "Paper", "Measured"],
    );

    // --- Figure 4: AC characterisation + Phase IV fit.
    println!("[1/5] Figure 4: integrator AC response ...");
    let (_, fit) = phase4_extract(&Default::default())?;
    summary.push_row(vec![
        "Fig 4 DC gain / poles".into(),
        "21 dB / 0.886 MHz / 5.895 GHz".into(),
        format!(
            "{:.1} dB / {:.3} MHz / {:.2} GHz",
            fit.gain_db,
            fit.f_pole1 / 1e6,
            fit.f_pole2 / 1e9
        ),
    ]);

    // --- Figure 5: transient fidelity comparison.
    println!("[2/5] Figure 5: transient responses ...");
    let p_ideal = transient_peak(Box::new(IdealIntegrator::default()));
    let p_model = transient_peak(Box::new(BehavioralIntegrator::default()));
    let p_ckt = transient_peak(Box::new(CircuitIntegrator::with_defaults()?));
    summary.push_row(vec![
        "Fig 5 peak: ideal/model/circuit".into(),
        "model ≈ circuit < ideal".into(),
        format!("{p_ideal:.2} / {p_model:.2} / {p_ckt:.2} V"),
    ]);

    // --- Table 1: CPU time at 2 µs.
    println!("[3/5] Table 1: CPU time (2 µs scenario) ...");
    let campaign = CpuTimeCampaign {
        sim_time: 2e-6,
        ..Default::default()
    };
    let (_, rows) = campaign.run_all()?;
    let wall = |label: &str| {
        rows.iter()
            .find(|r| r.label.contains(label))
            .map(|r| r.wall.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    summary.push_row(vec![
        "Tab 1 CPU ratio (circuit : model : ideal)".into(),
        "6.5 : 2.2 : 1".into(),
        format!(
            "{:.0} : {:.1} : 1",
            wall("ELDO") / wall("IDEAL"),
            wall("VHDL") / wall("IDEAL")
        ),
    ]);

    // --- Figure 6: BER at two points, ideal vs circuit.
    println!("[4/5] Figure 6: BER (200 bits/point) ...");
    let ber = BerCampaign {
        ebn0_db: vec![8.0, 14.0],
        bits_per_point: 200,
        ..Default::default()
    };
    let ideal = ber.run("ideal", || build_integrator(Fidelity::Ideal))?;
    let circuit = ber.run("circuit", || build_integrator(Fidelity::Circuit))?;
    summary.push_row(vec![
        "Fig 6 BER @ 8 / 14 dB (ideal)".into(),
        "waterfall 1e0 → ~1e-4 over 0–14 dB".into(),
        format!(
            "{:.2e} / {:.2e}",
            ideal.points[0].ber(),
            ideal.points[1].ber()
        ),
    ]);
    summary.push_row(vec![
        "Fig 6 BER @ 8 / 14 dB (circuit)".into(),
        "tracks ideal, diverges at high Eb/N0".into(),
        format!(
            "{:.2e} / {:.2e}",
            circuit.points[0].ber(),
            circuit.points[1].ber()
        ),
    ]);

    // --- Table 2: TWR, 3 iterations each.
    println!("[5/5] Table 2: TWR @ 9.9 m (3 iterations/row) ...");
    let cfg = TwrConfig::default();
    let (ideal_row, _) = twr_table_row(
        &cfg,
        3,
        "ideal",
        || build_integrator(Fidelity::Ideal).expect("integrator"),
        0x7AB1E2,
    )?;
    let (ckt_row, _) = twr_table_row(
        &cfg,
        3,
        "circuit",
        || build_integrator(Fidelity::Circuit).expect("integrator"),
        0x7AB1E2,
    )?;
    summary.push_row(vec![
        "Tab 2 TWR mean ± std (ideal)".into(),
        "10.10 ± 0.49 m".into(),
        format!("{:.2} ± {:.2} m", ideal_row.mean, ideal_row.std_dev),
    ]);
    summary.push_row(vec![
        "Tab 2 TWR mean ± std (circuit)".into(),
        "11.16 ± 0.10 m".into(),
        format!("{:.2} ± {:.2} m", ckt_row.mean, ckt_row.std_dev),
    ]);

    println!("\n{summary}");
    println!("total wall time: {:?}", t_start.elapsed());
    Ok(())
}
