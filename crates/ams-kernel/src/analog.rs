//! Continuous-time analog models.
//!
//! A model is a system of residual equations `F(t, x, ẋ, u) = 0` over a
//! state vector `x` with external inputs `u`. The residual (DAE) form covers
//! both differential branches (`vo'Dot == K * vin` becomes
//! `r = K*u - ẋ`) and algebraic branches (`vo == 0.0` becomes `r = x`),
//! which is exactly the structure of VHDL-AMS `if … use` simultaneous
//! statements the paper's listings rely on.

/// A continuous-time model in residual form.
///
/// # Examples
///
/// The paper's Phase II "ideal integrator with gate":
/// `if sel='1' use vo'Dot == vin*K; else vo == 0.0; end use;`
///
/// ```
/// use ams_kernel::analog::AnalogModel;
///
/// struct GatedIntegrator {
///     k: f64,
/// }
///
/// impl AnalogModel for GatedIntegrator {
///     fn dim(&self) -> usize { 1 }
///     // u[0] = vin, u[1] = sel (0.0 / 1.0)
///     fn residual(&self, _t: f64, x: &[f64], xdot: &[f64], u: &[f64], r: &mut [f64]) {
///         if u[1] > 0.5 {
///             r[0] = self.k * u[0] - xdot[0]; // vo' = K*vin
///         } else {
///             r[0] = x[0]; // vo = 0
///         }
///     }
/// }
/// ```
pub trait AnalogModel {
    /// Number of state variables (equations).
    fn dim(&self) -> usize;

    /// Evaluates the residuals `r[i] = F_i(t, x, ẋ, u)`.
    ///
    /// All slices have well-defined lengths: `x`, `xdot` and `r` have
    /// `self.dim()` entries; `u` has whatever length the surrounding block
    /// feeds (the model defines the convention).
    fn residual(&self, t: f64, x: &[f64], xdot: &[f64], u: &[f64], r: &mut [f64]);

    /// Initial state; zeros by default.
    fn initial_state(&self) -> Vec<f64> {
        vec![0.0; self.dim()]
    }
}

/// A gated linear two-pole model — the paper's Phase IV behavioural
/// integrator listing, generalised:
///
/// ```text
/// if sel='1' use
///   vin  - (1/ω1)·vo_q' - vo_q == 0
///   A·vo_q - (1/ω2)·vo'  - vo == 0
/// else vo_q == 0; vo == 0; end use;
/// ```
///
/// States: `x[0] = vo_q` (internal), `x[1] = vo` (output).
/// Inputs: `u[0] = vin`, `u[1] = sel` (gate), `u[2] = hold` (freeze output).
///
/// With `hold` asserted the derivative terms are forced to zero, modelling
/// the hold interval between integration and dump (an I&D-specific
/// extension that keeps the three-phase integrate/hold/dump cycle in one
/// model).
#[derive(Debug, Clone, PartialEq)]
pub struct TwoPoleGatedModel {
    /// Mid-band gain `A` (linear, not dB).
    pub gain: f64,
    /// First pole angular frequency `ω1 = 2π·f1` (rad/s).
    pub omega1: f64,
    /// Second pole angular frequency `ω2 = 2π·f2` (rad/s).
    pub omega2: f64,
    /// Optional symmetric input clipping (linear-range limit), in volts.
    /// `None` models the pure linear transfer function.
    pub input_clip: Option<f64>,
}

impl TwoPoleGatedModel {
    /// Builds the model from pole *frequencies* in hertz and mid-band gain
    /// in decibels — the way the paper quotes them (21.8 dB, 0.8 MHz,
    /// 5.9 GHz).
    pub fn from_db_and_hz(gain_db: f64, f1_hz: f64, f2_hz: f64) -> Self {
        TwoPoleGatedModel {
            gain: 10f64.powf(gain_db / 20.0),
            omega1: 2.0 * std::f64::consts::PI * f1_hz,
            omega2: 2.0 * std::f64::consts::PI * f2_hz,
            input_clip: None,
        }
    }

    /// Adds a symmetric input linear-range clip of `±v` volts.
    pub fn with_input_clip(mut self, v: f64) -> Self {
        self.input_clip = Some(v);
        self
    }
}

impl AnalogModel for TwoPoleGatedModel {
    fn dim(&self) -> usize {
        2
    }

    fn residual(&self, _t: f64, x: &[f64], xdot: &[f64], u: &[f64], r: &mut [f64]) {
        let sel = u.get(1).copied().unwrap_or(1.0) > 0.5;
        let hold = u.get(2).copied().unwrap_or(0.0) > 0.5;
        if hold {
            // Freeze both states.
            r[0] = xdot[0];
            r[1] = xdot[1];
        } else if sel {
            let mut vin = u[0];
            if let Some(clip) = self.input_clip {
                vin = vin.clamp(-clip, clip);
            }
            r[0] = vin - xdot[0] / self.omega1 - x[0];
            r[1] = self.gain * x[0] - xdot[1] / self.omega2 - x[1];
        } else {
            r[0] = x[0];
            r[1] = x[1];
        }
    }
}

/// The ideal gated integrator of the paper's Phase II listing:
/// `if sel='1' use vo'Dot == vin*K; else vo == 0.0; end use;`
/// plus a hold input mirroring [`TwoPoleGatedModel`].
///
/// State: `x[0] = vo`. Inputs: `u[0] = vin`, `u[1] = sel`, `u[2] = hold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealGatedIntegrator {
    /// Integration constant `K` (1/s).
    pub k: f64,
}

impl IdealGatedIntegrator {
    /// An integrator with gain constant `k` (in 1/seconds).
    pub fn new(k: f64) -> Self {
        IdealGatedIntegrator { k }
    }
}

impl AnalogModel for IdealGatedIntegrator {
    fn dim(&self) -> usize {
        1
    }

    fn residual(&self, _t: f64, x: &[f64], xdot: &[f64], u: &[f64], r: &mut [f64]) {
        let sel = u.get(1).copied().unwrap_or(1.0) > 0.5;
        let hold = u.get(2).copied().unwrap_or(0.0) > 0.5;
        if hold {
            r[0] = xdot[0];
        } else if sel {
            r[0] = self.k * u[0] - xdot[0];
        } else {
            r[0] = x[0];
        }
    }
}

/// A single-pole RC low-pass (`τ·ẏ + y = u`), useful as a bandwidth-limit
/// building block and as a solver test vehicle with a closed-form solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirstOrderLag {
    /// Time constant τ in seconds.
    pub tau: f64,
    /// DC gain.
    pub gain: f64,
}

impl AnalogModel for FirstOrderLag {
    fn dim(&self) -> usize {
        1
    }

    fn residual(&self, _t: f64, x: &[f64], xdot: &[f64], u: &[f64], r: &mut [f64]) {
        r[0] = self.gain * u[0] - x[0] - self.tau * xdot[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_integrator_residual_branches() {
        let m = IdealGatedIntegrator::new(1e9);
        let mut r = [0.0];
        // Integrating: residual zero when xdot == k*vin.
        m.residual(0.0, &[0.3], &[2e8], &[0.2, 1.0, 0.0], &mut r);
        assert!(r[0].abs() < 1e-9);
        // Dumping: residual equals the state.
        m.residual(0.0, &[0.3], &[0.0], &[0.2, 0.0, 0.0], &mut r);
        assert!((r[0] - 0.3).abs() < 1e-12);
        // Holding: residual equals the derivative.
        m.residual(0.0, &[0.3], &[5.0], &[0.2, 1.0, 1.0], &mut r);
        assert!((r[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn two_pole_dc_residual_matches_gain() {
        // At DC equilibrium (ẋ = 0): x0 = vin, x1 = A·x0.
        let m = TwoPoleGatedModel::from_db_and_hz(21.8, 0.8e6, 5.9e9);
        let a = 10f64.powf(21.8 / 20.0);
        let vin = 0.05;
        let x = [vin, a * vin];
        let mut r = [0.0, 0.0];
        m.residual(0.0, &x, &[0.0, 0.0], &[vin, 1.0, 0.0], &mut r);
        assert!(r[0].abs() < 1e-12);
        assert!(r[1].abs() < 1e-9);
    }

    #[test]
    fn two_pole_input_clip_limits_drive() {
        let m = TwoPoleGatedModel::from_db_and_hz(20.0, 1e6, 1e9).with_input_clip(0.05);
        let mut r_clipped = [0.0, 0.0];
        let mut r_at_limit = [0.0, 0.0];
        m.residual(
            0.0,
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[1.0, 1.0, 0.0],
            &mut r_clipped,
        );
        m.residual(
            0.0,
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[0.05, 1.0, 0.0],
            &mut r_at_limit,
        );
        assert_eq!(
            r_clipped, r_at_limit,
            "inputs beyond the clip must saturate"
        );
    }

    #[test]
    fn default_initial_state_is_zero() {
        let m = TwoPoleGatedModel::from_db_and_hz(21.8, 0.8e6, 5.9e9);
        assert_eq!(m.initial_state(), vec![0.0, 0.0]);
    }
}
