//! 2-PPM modulation and packet structure.
//!
//! The symbol period `Ts` is split into two slots of `Ts/2`: a `0` places
//! the pulse in `[0, Ts/2)`, a `1` in `[Ts/2, Ts)`. A packet is a
//! non-modulated preamble (all pulses in slot 0, used by noise
//! estimation / preamble sense and by the synchroniser) followed by the
//! 2-PPM payload.

use crate::pulse::PulseShape;
use crate::waveform::Waveform;

/// 2-PPM air-interface parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpmConfig {
    /// Symbol repetition period `Ts`, s.
    pub symbol_period: f64,
    /// Pulse shape.
    pub pulse: PulseShape,
    /// Per-pulse energy `Eb`, V²s (1 bit per pulse in 2-PPM).
    pub pulse_energy: f64,
    /// Sample rate for generated waveforms, Hz.
    pub sample_rate: f64,
    /// Offset of the pulse inside its slot, s (keeps the pulse clear of
    /// the slot boundary).
    pub intra_slot_offset: f64,
}

impl Default for PpmConfig {
    fn default() -> Self {
        PpmConfig {
            symbol_period: 64e-9,
            pulse: PulseShape::default(),
            pulse_energy: 1.0,
            sample_rate: 20e9,
            intra_slot_offset: 4e-9,
        }
    }
}

impl PpmConfig {
    /// Slot duration `Ts/2`.
    pub fn slot(&self) -> f64 {
        self.symbol_period / 2.0
    }

    /// Data rate, bit/s.
    pub fn bit_rate(&self) -> f64 {
        1.0 / self.symbol_period
    }
}

/// A transmit packet: preamble then payload bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Number of non-modulated preamble symbols.
    pub preamble_len: usize,
    /// Payload bits.
    pub payload: Vec<bool>,
}

impl Packet {
    /// A packet with the given preamble length and payload.
    pub fn new(preamble_len: usize, payload: Vec<bool>) -> Self {
        Packet {
            preamble_len,
            payload,
        }
    }

    /// Total symbol count.
    pub fn num_symbols(&self) -> usize {
        self.preamble_len + self.payload.len()
    }

    /// Duration on air under `cfg`.
    pub fn duration(&self, cfg: &PpmConfig) -> f64 {
        self.num_symbols() as f64 * cfg.symbol_period
    }
}

/// Modulates a packet to a sampled waveform.
///
/// The pulse of symbol `k` lands at
/// `k·Ts + slot(bit)·Ts/2 + intra_slot_offset`; preamble symbols always use
/// slot 0.
///
/// # Examples
///
/// ```
/// use uwb_phy::modulation::{modulate, Packet, PpmConfig};
///
/// let cfg = PpmConfig::default();
/// let pkt = Packet::new(4, vec![true, false]);
/// let tx = modulate(&pkt, &cfg);
/// assert!((tx.duration() - 6.0 * cfg.symbol_period).abs() < 1e-12);
/// ```
pub fn modulate(packet: &Packet, cfg: &PpmConfig) -> Waveform {
    let n_samples =
        (packet.num_symbols() as f64 * cfg.symbol_period * cfg.sample_rate).round() as usize;
    let mut out = Waveform::zeros(cfg.sample_rate, n_samples);
    let mut pulse = cfg.pulse.sampled(cfg.sample_rate);
    pulse.scale(cfg.pulse_energy.sqrt());
    for k in 0..packet.num_symbols() {
        let bit = if k < packet.preamble_len {
            false
        } else {
            packet.payload[k - packet.preamble_len]
        };
        let slot_offset = if bit { cfg.slot() } else { 0.0 };
        let t = k as f64 * cfg.symbol_period + slot_offset + cfg.intra_slot_offset;
        out.add_at(&pulse, t);
    }
    out
}

/// Ideal (genie) 2-PPM demodulation by per-slot energy comparison —
/// the Phase I abstraction level and the reference for system tests.
///
/// `t0` is the time of the first *payload* symbol boundary in `rx`.
pub fn demodulate_energy(rx: &Waveform, cfg: &PpmConfig, t0: f64, num_bits: usize) -> Vec<bool> {
    let fs = rx.sample_rate();
    let slot_samples = (cfg.slot() * fs).round() as usize;
    let mut bits = Vec::with_capacity(num_bits);
    for k in 0..num_bits {
        let sym_start = ((t0 + k as f64 * cfg.symbol_period) * fs).round() as i64;
        let energy = |from: i64, len: usize| -> f64 {
            (0..len)
                .map(|i| {
                    let idx = from + i as i64;
                    if idx < 0 {
                        0.0
                    } else {
                        let x = rx.samples().get(idx as usize).copied().unwrap_or(0.0);
                        x * x
                    }
                })
                .sum()
        };
        let e0 = energy(sym_start, slot_samples);
        let e1 = energy(sym_start + slot_samples as i64, slot_samples);
        bits.push(e1 > e0);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulated_energy_matches_config() {
        let cfg = PpmConfig {
            pulse_energy: 2.5,
            ..Default::default()
        };
        let pkt = Packet::new(0, vec![false; 8]);
        let tx = modulate(&pkt, &cfg);
        assert!(
            (tx.energy() - 8.0 * 2.5).abs() / (8.0 * 2.5) < 1e-9,
            "E = {}",
            tx.energy()
        );
    }

    #[test]
    fn pulses_land_in_correct_slots() {
        let cfg = PpmConfig::default();
        let pkt = Packet::new(1, vec![true]);
        let tx = modulate(&pkt, &cfg);
        let fs = cfg.sample_rate;
        let slot_samples = (cfg.slot() * fs) as usize;
        let sym_samples = (cfg.symbol_period * fs) as usize;
        let e = |from: usize, len: usize| -> f64 {
            tx.samples()[from..from + len].iter().map(|x| x * x).sum()
        };
        // Preamble symbol: energy in slot 0 only.
        assert!(e(0, slot_samples) > 0.9 * cfg.pulse_energy * fs.recip() * fs);
        assert!(e(slot_samples, slot_samples) < 1e-12);
        // Payload '1': energy in slot 1.
        assert!(e(sym_samples, slot_samples) < 1e-12);
        assert!(e(sym_samples + slot_samples, slot_samples) > 0.0);
    }

    #[test]
    fn noiseless_round_trip() {
        let cfg = PpmConfig::default();
        let bits = vec![true, false, true, true, false, false, true, false];
        let pkt = Packet::new(4, bits.clone());
        let tx = modulate(&pkt, &cfg);
        let t0 = pkt.preamble_len as f64 * cfg.symbol_period;
        let rx_bits = demodulate_energy(&tx, &cfg, t0, bits.len());
        assert_eq!(rx_bits, bits);
    }

    #[test]
    fn packet_duration() {
        let cfg = PpmConfig::default();
        let pkt = Packet::new(16, vec![false; 32]);
        assert_eq!(pkt.num_symbols(), 48);
        assert!((pkt.duration(&cfg) - 48.0 * 64e-9).abs() < 1e-15);
    }

    #[test]
    fn round_trip_with_delay_known_to_genie() {
        let cfg = PpmConfig::default();
        let bits = vec![true, true, false, true];
        let pkt = Packet::new(2, bits.clone());
        let tx = modulate(&pkt, &cfg);
        // Delay the whole packet by 10 ns.
        let mut delayed = Waveform::zeros(cfg.sample_rate, tx.len() + 400);
        delayed.add_at(&tx, 10e-9);
        let t0 = 10e-9 + pkt.preamble_len as f64 * cfg.symbol_period;
        assert_eq!(demodulate_energy(&delayed, &cfg, t0, bits.len()), bits);
    }
}
