//! Localization from ranging measurements.
//!
//! The paper's motivation is "the complete integration of UWB transceivers
//! with locationing functions" for WPAN applications (package tracking,
//! search-and-rescue). This module closes that loop: given TWR distance
//! estimates to anchors at known positions, solve for the tag position by
//! nonlinear least squares (Gauss-Newton multilateration).

/// A 2-D point, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate, m.
    pub x: f64,
    /// y coordinate, m.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// One anchor observation: known position, measured range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeObservation {
    /// Anchor position.
    pub anchor: Point,
    /// Measured distance to the tag, m.
    pub range: f64,
}

/// Multilateration outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fix {
    /// Estimated tag position.
    pub position: Point,
    /// Root-mean-square range residual at the solution, m.
    pub rms_residual: f64,
    /// Gauss-Newton iterations used.
    pub iterations: usize,
}

/// Errors from a localization solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalizeError {
    /// Fewer than three anchors (2-D position is under-determined).
    TooFewAnchors,
    /// The normal equations were singular (e.g. collinear anchors with the
    /// tag on their line).
    DegenerateGeometry,
}

impl std::fmt::Display for LocalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalizeError::TooFewAnchors => write!(f, "need at least three anchors"),
            LocalizeError::DegenerateGeometry => {
                write!(f, "anchor geometry is degenerate for this position")
            }
        }
    }
}

impl std::error::Error for LocalizeError {}

/// Solves 2-D multilateration by Gauss-Newton from the anchors' centroid.
///
/// # Errors
///
/// [`LocalizeError::TooFewAnchors`] with fewer than 3 observations;
/// [`LocalizeError::DegenerateGeometry`] when the Jacobian normal matrix is
/// singular (collinear anchors).
pub fn multilaterate(observations: &[RangeObservation]) -> Result<Fix, LocalizeError> {
    if observations.len() < 3 {
        return Err(LocalizeError::TooFewAnchors);
    }
    // Start at the anchor centroid.
    let n = observations.len() as f64;
    let mut p = Point::new(
        observations.iter().map(|o| o.anchor.x).sum::<f64>() / n,
        observations.iter().map(|o| o.anchor.y).sum::<f64>() / n,
    );

    let mut iterations = 0;
    for _ in 0..50 {
        iterations += 1;
        // Residuals r_i = |p − a_i| − d_i; Jacobian rows are the unit
        // vectors from anchor to the estimate.
        let mut jtj = [[0.0f64; 2]; 2];
        let mut jtr = [0.0f64; 2];
        for o in observations {
            let dx = p.x - o.anchor.x;
            let dy = p.y - o.anchor.y;
            let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
            let r = dist - o.range;
            let (jx, jy) = (dx / dist, dy / dist);
            jtj[0][0] += jx * jx;
            jtj[0][1] += jx * jy;
            jtj[1][0] += jy * jx;
            jtj[1][1] += jy * jy;
            jtr[0] += jx * r;
            jtr[1] += jy * r;
        }
        let det = jtj[0][0] * jtj[1][1] - jtj[0][1] * jtj[1][0];
        if det.abs() < 1e-12 {
            return Err(LocalizeError::DegenerateGeometry);
        }
        let step_x = (jtj[1][1] * jtr[0] - jtj[0][1] * jtr[1]) / det;
        let step_y = (jtj[0][0] * jtr[1] - jtj[1][0] * jtr[0]) / det;
        p.x -= step_x;
        p.y -= step_y;
        if step_x.hypot(step_y) < 1e-9 {
            break;
        }
    }

    let ss: f64 = observations
        .iter()
        .map(|o| (p.distance(&o.anchor) - o.range).powi(2))
        .sum();
    Ok(Fix {
        position: p,
        rms_residual: (ss / n).sqrt(),
        iterations,
    })
}

/// Dilution-of-precision estimate: how range errors amplify into position
/// error for this geometry (the square root of the trace of `(JᵀJ)⁻¹` at
/// the given position).
///
/// # Errors
///
/// Same conditions as [`multilaterate`].
pub fn dilution_of_precision(anchors: &[Point], position: Point) -> Result<f64, LocalizeError> {
    if anchors.len() < 3 {
        return Err(LocalizeError::TooFewAnchors);
    }
    let mut jtj = [[0.0f64; 2]; 2];
    for a in anchors {
        let dx = position.x - a.x;
        let dy = position.y - a.y;
        let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
        let (jx, jy) = (dx / dist, dy / dist);
        jtj[0][0] += jx * jx;
        jtj[0][1] += jx * jy;
        jtj[1][0] += jy * jx;
        jtj[1][1] += jy * jy;
    }
    let det = jtj[0][0] * jtj[1][1] - jtj[0][1] * jtj[1][0];
    if det.abs() < 1e-12 {
        return Err(LocalizeError::DegenerateGeometry);
    }
    let trace_inv = (jtj[1][1] + jtj[0][0]) / det;
    Ok(trace_inv.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_anchors() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(20.0, 20.0),
            Point::new(0.0, 20.0),
        ]
    }

    #[test]
    fn exact_ranges_recover_the_position() {
        let tag = Point::new(7.3, 12.1);
        let obs: Vec<RangeObservation> = square_anchors()
            .into_iter()
            .map(|anchor| RangeObservation {
                anchor,
                range: tag.distance(&anchor),
            })
            .collect();
        let fix = multilaterate(&obs).unwrap();
        assert!(fix.position.distance(&tag) < 1e-6);
        assert!(fix.rms_residual < 1e-6);
    }

    #[test]
    fn biased_ranges_give_bounded_error() {
        // TWR estimates carry the systematic late bias measured in
        // EXPERIMENTS.md (~+0.3 m); position error stays metre-class.
        let tag = Point::new(11.0, 4.0);
        let obs: Vec<RangeObservation> = square_anchors()
            .into_iter()
            .map(|anchor| RangeObservation {
                anchor,
                range: tag.distance(&anchor) + 0.31,
            })
            .collect();
        let fix = multilaterate(&obs).unwrap();
        assert!(
            fix.position.distance(&tag) < 0.5,
            "position error {}",
            fix.position.distance(&tag)
        );
        // The common bias mostly cancels in a symmetric geometry, landing
        // in the residual instead.
        assert!(fix.rms_residual > 0.2);
    }

    #[test]
    fn too_few_anchors_rejected() {
        let obs = vec![
            RangeObservation {
                anchor: Point::new(0.0, 0.0),
                range: 5.0,
            },
            RangeObservation {
                anchor: Point::new(10.0, 0.0),
                range: 5.0,
            },
        ];
        assert_eq!(multilaterate(&obs), Err(LocalizeError::TooFewAnchors));
    }

    #[test]
    fn collinear_anchors_are_degenerate_on_their_line() {
        let obs: Vec<RangeObservation> = [0.0, 10.0, 20.0]
            .iter()
            .map(|&x| RangeObservation {
                anchor: Point::new(x, 0.0),
                range: 5.0,
            })
            .collect();
        // Tag on the anchor line: y is unobservable.
        let r = multilaterate(&obs);
        assert!(
            matches!(r, Err(LocalizeError::DegenerateGeometry)) || {
                // Some starts escape the line; accept a solve whose y is
                // symmetric (|y| consistent with range).
                r.is_ok()
            }
        );
        assert_eq!(
            dilution_of_precision(
                &[
                    Point::new(0.0, 0.0),
                    Point::new(10.0, 0.0),
                    Point::new(20.0, 0.0)
                ],
                Point::new(5.0, 0.0)
            ),
            Err(LocalizeError::DegenerateGeometry)
        );
    }

    #[test]
    fn dop_degrades_outside_the_anchor_hull() {
        let anchors = square_anchors();
        let inside = dilution_of_precision(&anchors, Point::new(10.0, 10.0)).unwrap();
        let outside = dilution_of_precision(&anchors, Point::new(200.0, 200.0)).unwrap();
        assert!(outside > 2.0 * inside, "inside {inside}, outside {outside}");
    }
}
