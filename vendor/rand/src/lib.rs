//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`RngCore`], [`SeedableRng`], and the [`Rng`] extension with
//! `gen_bool` / `gen_range`.
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched; this shim keeps the public surface source-compatible. The
//! generated *streams* are not bit-compatible with upstream `rand` — all
//! reproducibility guarantees in this repository are defined against this
//! implementation (fixed seed → fixed stream, forever).

#![warn(missing_docs)]

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be constructed from a fixed-width seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and constructs the
    /// generator. Deterministic: same input, same generator, always.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, v) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }
}

/// Maps 64 random bits onto the unit interval `[0, 1)` with 53-bit
/// resolution (the standard `u64 >> 11` construction).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform draw from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let width = self.end - self.start;
        self.start + width * unit_f64(rng.next_u64())
    }
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        let width = (self.end - self.start) as u64;
        // Widening-multiply rejection-free mapping (Lemire); the tiny
        // modulo bias is irrelevant at the widths used here.
        let hi = ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64;
        self.start + hi as usize
    }
}

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        let width = u128::from(self.end - self.start);
        let hi = ((u128::from(rng.next_u64()) * width) >> 64) as u64;
        self.start + hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = Lcg(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        let mut rng = Lcg(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_inside() {
        let mut rng = Lcg(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&x));
            let n: usize = rng.gen_range(3..17usize);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn seed_expansion_is_deterministic_and_distinct() {
        struct Cap([u8; 32]);
        impl SeedableRng for Cap {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Cap(seed)
            }
        }
        let a = Cap::seed_from_u64(7).0;
        let b = Cap::seed_from_u64(7).0;
        let c = Cap::seed_from_u64(8).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 32]);
    }
}
