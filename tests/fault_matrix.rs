//! Golden fault matrix: every deterministic injector crossed with the
//! rescue rung that absorbs it, pinning the full `RescueReport` shape
//! (attempt counts, final status, rescue signature) and a waveform
//! checksum. Any change to the rescue ladder's behaviour — order, depth,
//! bookkeeping or numerics — shows up here as a diff against the table.
//!
//! Determinism is asserted by running every cell twice: same seed and
//! schedule must reproduce the identical report and checksum.

use ams_kernel::analog::FirstOrderLag;
use ams_kernel::scheduler::{MixedSimulator, OdeBlock};
use ams_kernel::time::SimTime;
use spice::circuit::{Circuit, SourceWave};
use spice::{
    dcop_rescue_injected, waveform_checksum, FaultKind, FaultSchedule, RescuePolicy, TranOptions,
    TransientSimulator,
};

/// One measured cell of the matrix.
#[derive(Debug, PartialEq, Eq)]
struct Cell {
    signature: String,
    attempts: usize,
    successes: usize,
    rescued: bool,
    checksum: u64,
}

fn rc_circuit() -> (Circuit, spice::NodeId) {
    let mut c = Circuit::new();
    let a = c.node("a");
    let b = c.node("b");
    c.vsource("V1", a, Circuit::gnd(), SourceWave::Dc(1.0));
    c.resistor("R1", a, b, 1e3);
    c.capacitor("C1", b, Circuit::gnd(), 1e-9);
    (c, b)
}

/// Transient cell: inject `kind` at macro step 2 of an 8-step RC run.
fn tran_cell(kind: Option<FaultKind>) -> Cell {
    let (c, b) = rc_circuit();
    let opts = TranOptions {
        rescue: RescuePolicy::default(),
        ..TranOptions::default()
    };
    let mut sim = TransientSimulator::new(c, opts).expect("op");
    let mut schedule = FaultSchedule::new(0xFA);
    if let Some(kind) = kind {
        schedule = schedule.with_fault(2, kind);
    }
    sim.set_fault_schedule(schedule);
    let mut samples = Vec::new();
    for _ in 0..8 {
        sim.step(1e-9).expect("rescued");
        samples.push(sim.voltage(b));
    }
    let r = sim.rescue_report();
    Cell {
        signature: r.signature(),
        attempts: r.attempts(),
        successes: r.successes(),
        rescued: r.rescued(),
        checksum: waveform_checksum(&samples),
    }
}

/// DC cell: force the ladder to escalate by failing every stage in
/// `failed_stages` (0 = plain homotopy, 1 = extended gmin, 2 = source
/// ramp, 3 = pseudo-transient).
fn dc_cell(failed_stages: &[u64]) -> Cell {
    let (c, b) = rc_circuit();
    let mut schedule = FaultSchedule::new(0xDC);
    for &s in failed_stages {
        schedule = schedule.with_fault(s, FaultKind::NewtonDivergence);
    }
    let (sol, report) =
        dcop_rescue_injected(&c, &[], &RescuePolicy::default(), Some(&mut schedule))
            .expect("ladder rescues");
    let mid = sol.voltage(b);
    Cell {
        signature: report.signature(),
        attempts: report.attempts(),
        successes: report.successes(),
        rescued: report.rescued(),
        checksum: waveform_checksum(&[mid]),
    }
}

/// AMS cell: inject `kind` at lock-step iteration 3 of a 20 ns lag run.
/// The lag settles towards 3.0 — above `FAULT_SATURATION_RAIL` — so the
/// saturation injector visibly clamps the published sample.
fn ams_cell(kind: Option<FaultKind>) -> Cell {
    let mut ms = MixedSimulator::new(SimTime::from_ns(1));
    let u = ms.digital.add_signal("u", 1.0f64);
    let y = ms.digital.add_signal("y", 0.0f64);
    ms.add_block(Box::new(OdeBlock::new(
        FirstOrderLag {
            tau: 1e-9,
            gain: 3.0,
        },
        vec![u],
        vec![(y, 0)],
    )));
    let mut schedule = FaultSchedule::new(0xA5);
    if let Some(kind) = kind {
        schedule = schedule.with_fault(3, kind);
    }
    ms.set_fault_schedule(schedule);
    let mut samples = Vec::new();
    for k in 1..=20u64 {
        ms.run_until(SimTime::from_ns(k)).expect("rescued");
        samples.push(ms.digital.read(y).as_real());
    }
    let r = ms.rescue_report();
    Cell {
        signature: r.signature(),
        attempts: r.attempts(),
        successes: r.successes(),
        rescued: r.rescued(),
        checksum: waveform_checksum(&samples),
    }
}

fn matrix() -> Vec<(&'static str, Cell)> {
    vec![
        ("tran/clean", tran_cell(None)),
        (
            "tran/newton-divergence",
            tran_cell(Some(FaultKind::NewtonDivergence)),
        ),
        ("tran/zero-pivot", tran_cell(Some(FaultKind::ZeroPivot))),
        (
            "tran/non-finite-residual",
            tran_cell(Some(FaultKind::NonFiniteResidual)),
        ),
        ("dc/gmin-step", dc_cell(&[0])),
        ("dc/source-step", dc_cell(&[0, 1])),
        ("dc/pseudo-transient", dc_cell(&[0, 1, 2])),
        ("ams/clean", ams_cell(None)),
        (
            "ams/newton-divergence",
            ams_cell(Some(FaultKind::NewtonDivergence)),
        ),
        (
            "ams/saturate-output",
            ams_cell(Some(FaultKind::SaturateOutput)),
        ),
        ("ams/stall-event", ams_cell(Some(FaultKind::StallEvent))),
    ]
}

#[test]
fn fault_matrix_matches_golden_table() {
    // (name, signature, attempts, successes, rescued, checksum)
    //
    // Reading the table:
    //  * the three tran injectors all rescue through one timestep cut and
    //    land on the SAME waveform (the two half-steps re-integrate the
    //    interval cleanly), which differs from the clean run only by the
    //    finer discretisation of step 2;
    //  * the DC ladder is solution-preserving — every rung reaches the
    //    identical operating point, only the signature grows;
    //  * saturate-output clamps one published sample to the ±1 V rail
    //    (waveform differs from clean, no rescue needed);
    //  * stall-event defers the settle by one lock-step iteration, which
    //    the next sample fully absorbs (waveform identical to clean).
    let golden: Vec<(&str, &str, usize, usize, bool, u64)> = vec![
        ("tran/clean", "", 0, 0, false, 0x2f01d139993dd5a5),
        (
            "tran/newton-divergence",
            "timestep-cut!",
            1,
            1,
            true,
            0x952aaa716293a136,
        ),
        (
            "tran/zero-pivot",
            "timestep-cut!",
            1,
            1,
            true,
            0x952aaa716293a136,
        ),
        (
            "tran/non-finite-residual",
            "timestep-cut!",
            1,
            1,
            true,
            0x952aaa716293a136,
        ),
        ("dc/gmin-step", "gmin-step!", 1, 1, true, 0x208c6ad9b1f4af52),
        (
            "dc/source-step",
            "gmin-step;source-step!",
            2,
            1,
            true,
            0x208c6ad9b1f4af52,
        ),
        (
            "dc/pseudo-transient",
            "gmin-step;source-step;pseudo-transient!",
            3,
            1,
            true,
            0x208c6ad9b1f4af52,
        ),
        ("ams/clean", "", 0, 0, false, 0x70eda07547bc61fc),
        (
            "ams/newton-divergence",
            "timestep-cut!",
            1,
            1,
            true,
            0x1b8fde3a0d21b9cd,
        ),
        ("ams/saturate-output", "", 0, 0, false, 0x19a0bf976aa7791f),
        ("ams/stall-event", "", 0, 0, false, 0x70eda07547bc61fc),
    ];
    let measured = matrix();
    assert_eq!(measured.len(), golden.len());
    for (name, cell) in &measured {
        println!(
            "(\"{name}\", \"{}\", {}, {}, {}, {:#018x}),",
            cell.signature, cell.attempts, cell.successes, cell.rescued, cell.checksum
        );
    }
    for ((name, cell), (gname, gsig, gatt, gsucc, gres, gsum)) in measured.iter().zip(&golden) {
        assert_eq!(name, gname);
        assert_eq!(&cell.signature, gsig, "{name}: signature");
        assert_eq!(cell.attempts, *gatt, "{name}: attempts");
        assert_eq!(cell.successes, *gsucc, "{name}: successes");
        assert_eq!(cell.rescued, *gres, "{name}: rescued");
        assert_eq!(cell.checksum, *gsum, "{name}: waveform checksum");
    }
}

#[test]
fn fault_matrix_is_deterministic() {
    let a = matrix();
    let b = matrix();
    assert_eq!(a, b, "same seed + schedule must reproduce bit-identically");
}
