//! The transistor-level substrate standalone: deck parsing, operating
//! points, AC sweeps and transient runs on small reference circuits.
//!
//! ```sh
//! cargo run --release --example spice_playground
//! ```

use spice::ac::{ac_analysis, log_sweep};
use spice::dcop::dcop;
use spice::library::cmos_inverter;
use spice::netlist::parse_deck;
use spice::tran::{TranOptions, TransientSimulator};
use spice::Circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deck, parsed and solved.
    let deck = r"
* common-source amplifier
.model nch nmos018
VDD vdd 0 DC 1.8
VIN in 0 DC 0.6 AC 1.0
RL vdd out 20k
CL out 0 1p
M1 out in 0 0 nch W=10u L=1u
";
    let ckt = parse_deck(deck)?;
    let out = ckt.find_node("out").expect("node exists");
    let op = dcop(&ckt)?;
    println!("common-source amp: V(out) = {:.3} V", op.voltage(out));

    let sweep = ac_analysis(&ckt, &[], &log_sweep(1e4, 10e9, 4))?;
    let gain = sweep.gain_db(out, Circuit::gnd());
    println!(
        "  AC gain: {:.1} dB at LF, {:.1} dB at 10 GHz",
        gain[0],
        gain.last().copied().unwrap_or(f64::NAN)
    );

    // 2. A CMOS inverter in transient (input held low → output stays high).
    let (inv, _vin, vout) = cmos_inverter(0.0);
    let mut sim = TransientSimulator::new(inv, TranOptions::default())?;
    println!("\ninverter: initial V(out) = {:.3} V", sim.voltage(vout));
    sim.run_until(2e-9, 50e-12, |_| {})?;
    println!("inverter after 2 ns: V(out) = {:.3} V", sim.voltage(vout));

    // 3. The paper's I&D cell at a glance.
    let tb = spice::library::integrate_dump_testbench(&Default::default()).expect("builtin bench");
    println!(
        "\nintegrate & dump cell: {} transistors, {} circuit nodes",
        tb.circuit.transistor_count(),
        tb.circuit.num_nodes()
    );
    let mut ext = vec![0.0; tb.circuit.num_externals];
    ext[tb.slot_inp] = tb.input_cm;
    ext[tb.slot_inm] = tb.input_cm;
    ext[tb.slot_controlp] = 1.8;
    let op = spice::dcop::dcop_with(&tb.circuit, &ext)?;
    println!(
        "  operating point: out_intp = {:.3} V, out_intm = {:.3} V ({} Newton iterations)",
        op.voltage(tb.ports.out_intp),
        op.voltage(tb.ports.out_intm),
        op.iterations
    );
    Ok(())
}
