//! Property tests (opt-in, `--features proptests`) for the kernel's
//! invariants: `SimTime` arithmetic round-trips, LU solves of diagonally
//! dominant systems, implicit-method stability of the first-order lag,
//! and linearity/dump behaviour of the gated integrator.
//!
//! The generator is a deterministic xorshift so failures replay by seed —
//! no external proptest crate (the build environment is offline).
#![cfg(feature = "proptests")]

use ams_kernel::analog::{FirstOrderLag, IdealGatedIntegrator};
use ams_kernel::linalg::{solve, DMatrix};
use ams_kernel::solver::{ImplicitSolver, Method, SolverOptions, TransientState};
use ams_kernel::time::SimTime;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

/// Addition/subtraction of times round-trips, and seconds→SimTime→seconds
/// is tight for simulation-scale values.
#[test]
fn time_arithmetic_roundtrips() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..2000 {
        let seed = rng.0;
        let a = rng.below(u64::MAX / 4);
        let b = rng.below(u64::MAX / 4);
        let ta = SimTime::from_fs(a);
        let tb = SimTime::from_fs(b);
        assert_eq!((ta + tb) - tb, ta, "case {case} (seed {seed:#x})");
        assert!(ta + tb >= ta.max(tb), "case {case} (seed {seed:#x})");

        let secs = rng.range(-12.0, -3.0);
        let secs = 10f64.powf(secs);
        let t = SimTime::from_secs_f64(secs);
        let back = t.as_secs_f64();
        assert!(
            (back - secs).abs() <= 1e-15 + secs * 1e-12,
            "case {case} (seed {seed:#x}): {back} vs {secs}"
        );
    }
}

/// Division and remainder decompose a duration exactly.
#[test]
fn time_div_rem_decompose() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..2000 {
        let seed = rng.0;
        let total = 1 + rng.below(1_000_000_000);
        let step = 1 + rng.below(1_000_000);
        let t = SimTime::from_fs(total);
        let s = SimTime::from_fs(step);
        let q = t / s;
        let r = t % s;
        assert_eq!(s * q + r, t, "case {case} (seed {seed:#x})");
        assert!(r < s, "case {case} (seed {seed:#x})");
    }
}

/// Diagonally dominant systems solve to small residuals.
#[test]
fn linalg_residual_small() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..500 {
        let seed = rng.0;
        let n = 2 + rng.below(4) as usize;
        let mut a = DMatrix::zeros(n, n);
        for r in 0..n {
            let mut row_sum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = rng.range(-1.0, 1.0);
                    a[(r, c)] = v;
                    row_sum += v.abs();
                }
            }
            a[(r, r)] = row_sum + 1.0; // strict dominance
        }
        let b: Vec<f64> = (0..n).map(|_| rng.range(-10.0, 10.0)).collect();
        let x = solve(&a, &b).expect("dominant systems are nonsingular");
        let back = a.mul_vec(&x);
        for (bi, bb) in back.iter().zip(&b) {
            assert!(
                (bi - bb).abs() < 1e-8,
                "case {case} (seed {seed:#x}): residual {bi} vs {bb}"
            );
        }
    }
}

/// The lag settles to `gain·u` regardless of step size (stability of the
/// implicit methods).
#[test]
fn lag_settles_for_any_step() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..200 {
        let seed = rng.0;
        let tau = 10f64.powf(rng.range(-8.0, -5.0));
        let h = rng.range(0.01, 2.0) * tau;
        let gain = rng.range(0.1, 5.0);
        let method = if rng.below(2) == 0 {
            Method::BackwardEuler
        } else {
            Method::Trapezoidal
        };
        let model = FirstOrderLag { tau, gain };
        let mut solver = ImplicitSolver::new(SolverOptions {
            method,
            ..Default::default()
        });
        let mut st = TransientState::from_model(&model);
        let steps = ((10.0 * tau / h).ceil() as usize).max(20);
        solver
            .run(&model, 0.0, h, steps, &mut st, |_| vec![1.0], |_, _| {})
            .expect("stable");
        assert!(
            (st.x[0] - gain).abs() < 0.05 * gain,
            "case {case} (seed {seed:#x}): settled {} vs {gain} ({method:?})",
            st.x[0]
        );
    }
}

/// The gated integrator is linear in its input.
#[test]
fn integrator_linearity() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..200 {
        let seed = rng.0;
        let vin = rng.range(0.001, 0.2);
        let k = 10f64.powf(rng.range(6.0, 9.0));
        let run = |v: f64| {
            let model = IdealGatedIntegrator::new(k);
            let mut solver = ImplicitSolver::default();
            let mut st = TransientState::from_model(&model);
            solver
                .run(
                    &model,
                    0.0,
                    1e-10,
                    200,
                    &mut st,
                    |_| vec![v, 1.0, 0.0],
                    |_, _| {},
                )
                .expect("run");
            st.x[0]
        };
        let y1 = run(vin);
        let y2 = run(2.0 * vin);
        assert!(
            (y2 - 2.0 * y1).abs() < 1e-6 * y1.abs().max(1e-12),
            "case {case} (seed {seed:#x}): {y2} vs 2×{y1}"
        );
    }
}

/// Dumping always drives the state to zero, from any accumulated value.
#[test]
fn dump_always_zeroes() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for case in 0..200 {
        let seed = rng.0;
        let vin = rng.range(-0.5, 0.5);
        let n = 10 + rng.below(290) as usize;
        let model = IdealGatedIntegrator::new(1e8);
        let mut solver = ImplicitSolver::default();
        let mut st = TransientState::from_model(&model);
        solver
            .run(
                &model,
                0.0,
                1e-10,
                n,
                &mut st,
                |_| vec![vin, 1.0, 0.0],
                |_, _| {},
            )
            .expect("integrate");
        solver
            .step(&model, 0.0, 1e-10, &[vin, 0.0, 0.0], &mut st)
            .expect("dump");
        assert!(
            st.x[0].abs() < 1e-6,
            "case {case} (seed {seed:#x}): residual {}",
            st.x[0]
        );
    }
}
