//! Deck execution: run the analyses a SPICE deck asks for.
//!
//! [`run_deck`] parses a netlist, honours its `.tran`, `.ac` and `.print`
//! cards and returns the requested waveforms — the closest thing to handing
//! a deck to Eldo on the command line.

use crate::ac::{ac_analysis, log_sweep, AcSweep};
use crate::circuit::{Circuit, NodeId};
use crate::dcop::{dcop, DcSolution};
use crate::error::SpiceError;
use crate::netlist::{parse_deck, parse_value};
use crate::tran::{TranOptions, TransientSimulator};

/// Transient analysis request (`.tran tstep tstop`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranCard {
    /// Step, s.
    pub tstep: f64,
    /// Stop time, s.
    pub tstop: f64,
}

/// AC analysis request (`.ac dec n fstart fstop`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcCard {
    /// Points per decade.
    pub points_per_decade: usize,
    /// Start frequency, Hz.
    pub f_start: f64,
    /// Stop frequency, Hz.
    pub f_stop: f64,
}

/// The analyses found in a deck.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeckAnalyses {
    /// `.tran` card, if present.
    pub tran: Option<TranCard>,
    /// `.ac` card, if present.
    pub ac: Option<AcCard>,
    /// Node names from `.print` cards (all non-ground nodes when absent).
    pub prints: Vec<String>,
}

/// A sampled transient waveform for one printed node.
#[derive(Debug, Clone, PartialEq)]
pub struct TranTrace {
    /// Node name.
    pub node: String,
    /// Sample times, s.
    pub times: Vec<f64>,
    /// Node voltages, V.
    pub values: Vec<f64>,
}

/// Everything a deck run produced.
#[derive(Debug)]
pub struct DeckRun {
    /// The parsed circuit.
    pub circuit: Circuit,
    /// The analyses that were requested.
    pub analyses: DeckAnalyses,
    /// DC operating point (always computed).
    pub op: DcSolution,
    /// Transient traces (one per printed node) when `.tran` was present.
    pub tran: Vec<TranTrace>,
    /// AC sweep when `.ac` was present.
    pub ac: Option<AcSweep>,
}

impl DeckRun {
    /// Finds a transient trace by node name.
    pub fn trace(&self, node: &str) -> Option<&TranTrace> {
        let key = node.to_ascii_lowercase();
        self.tran.iter().find(|t| t.node == key)
    }
}

/// Extracts analysis cards from a deck's dot-lines.
///
/// # Errors
///
/// Returns [`SpiceError::Parse`] for malformed cards.
pub fn parse_analyses(deck: &str) -> Result<DeckAnalyses, SpiceError> {
    let mut out = DeckAnalyses::default();
    for (ln, raw) in deck.lines().enumerate() {
        let line = raw.trim();
        let lower = line.to_ascii_lowercase();
        let err = |message: String| SpiceError::Parse {
            line: ln + 1,
            message,
        };
        if lower.starts_with(".tran") {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() < 3 {
                return Err(err(".tran needs: tstep tstop".into()));
            }
            out.tran = Some(TranCard {
                tstep: parse_value(toks[1]).map_err(&err)?,
                tstop: parse_value(toks[2]).map_err(&err)?,
            });
        } else if lower.starts_with(".ac") {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() < 5 || !toks[1].eq_ignore_ascii_case("dec") {
                return Err(err(".ac needs: dec n fstart fstop".into()));
            }
            out.ac = Some(AcCard {
                points_per_decade: parse_value(toks[2]).map_err(&err)? as usize,
                f_start: parse_value(toks[3]).map_err(&err)?,
                f_stop: parse_value(toks[4]).map_err(&err)?,
            });
        } else if lower.starts_with(".print") {
            for tok in line.split_whitespace().skip(1) {
                // Accept both `v(node)` and bare `node`.
                let name = tok
                    .trim_start_matches("V(")
                    .trim_start_matches("v(")
                    .trim_end_matches(')');
                out.prints.push(name.to_ascii_lowercase());
            }
        }
    }
    Ok(out)
}

/// Parses and runs a deck: DC operating point always, plus the `.tran`
/// and `.ac` analyses it requests.
///
/// # Errors
///
/// Propagates parse and analysis failures.
///
/// # Examples
///
/// ```
/// use spice::deck::run_deck;
///
/// # fn main() -> Result<(), spice::SpiceError> {
/// let run = run_deck(r"
/// * RC step response
/// V1 in 0 PULSE(0 1 0 1p 1p 1 1)
/// R1 in out 1k
/// C1 out 0 1n
/// .tran 2n 3u
/// .print v(out)
/// ")?;
/// let out = run.trace("out").expect("printed node");
/// let last = *out.values.last().expect("samples");
/// assert!((last - 0.95).abs() < 0.05); // ~3 time constants
/// # Ok(())
/// # }
/// ```
pub fn run_deck(deck: &str) -> Result<DeckRun, SpiceError> {
    let circuit = parse_deck(deck)?;
    let mut analyses = parse_analyses(deck)?;
    if analyses.prints.is_empty() {
        analyses.prints = (1..circuit.num_nodes())
            .map(|i| circuit.node_name(NodeId(i)).to_string())
            .collect();
    }
    let op = dcop(&circuit)?;

    let print_nodes: Vec<(String, NodeId)> = analyses
        .prints
        .iter()
        .filter_map(|name| circuit.find_node(name).map(|id| (name.clone(), id)))
        .collect();

    let mut tran = Vec::new();
    if let Some(card) = analyses.tran {
        let mut sim = TransientSimulator::new(circuit.clone(), TranOptions::default())?;
        let mut times = vec![0.0];
        let mut values: Vec<Vec<f64>> = print_nodes
            .iter()
            .map(|&(_, id)| vec![sim.voltage(id)])
            .collect();
        let steps = (card.tstop / card.tstep).round() as usize;
        for _ in 0..steps {
            sim.step(card.tstep)?;
            times.push(sim.time());
            for (col, &(_, id)) in values.iter_mut().zip(&print_nodes) {
                col.push(sim.voltage(id));
            }
        }
        tran = print_nodes
            .iter()
            .zip(values)
            .map(|((name, _), vals)| TranTrace {
                node: name.clone(),
                times: times.clone(),
                values: vals,
            })
            .collect();
    }

    let ac = match analyses.ac {
        Some(card) => Some(ac_analysis(
            &circuit,
            &[],
            &log_sweep(card.f_start, card.f_stop, card.points_per_decade),
        )?),
        None => None,
    };

    Ok(DeckRun {
        circuit,
        analyses,
        op,
        tran,
        ac,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_cards() {
        let a = parse_analyses(".tran 1n 10u\n.ac dec 10 1k 1meg\n.print v(out) in\n").unwrap();
        let t = a.tran.unwrap();
        assert!((t.tstep - 1e-9).abs() < 1e-21);
        assert!((t.tstop - 10e-6).abs() < 1e-12);
        let ac = a.ac.unwrap();
        assert_eq!(ac.points_per_decade, 10);
        assert_eq!(ac.f_stop, 1e6);
        assert_eq!(a.prints, vec!["out", "in"]);
    }

    #[test]
    fn malformed_cards_error_with_line() {
        let e = parse_analyses("\n.tran 1n\n").unwrap_err();
        match e {
            SpiceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_analyses(".ac lin 5 1 10\n").is_err());
    }

    #[test]
    fn deck_with_ac_runs_sweep() {
        let run = run_deck(
            "V1 in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n.ac dec 5 1k 100meg\n.print v(out)\n",
        )
        .unwrap();
        let sweep = run.ac.expect("ac ran");
        let out = run.circuit.find_node("out").unwrap();
        let g = sweep.gain_db(out, Circuit::gnd());
        assert!(g[0].abs() < 0.1);
        assert!(*g.last().unwrap() < -30.0);
        assert!(run.tran.is_empty());
    }

    #[test]
    fn print_defaults_to_all_nodes() {
        let run = run_deck("V1 a 0 DC 1\nR1 a b 1k\nR2 b 0 1k\n.tran 1u 5u\n").unwrap();
        assert_eq!(run.tran.len(), 2);
        assert!(run.trace("b").is_some());
        let b = run.trace("b").unwrap();
        assert!((b.values.last().unwrap() - 0.5).abs() < 1e-6);
    }
}
